/**
 * @file
 * Tests for the analysis framework: stage runner, fits, function
 * attribution, scaling model and the full analyses at small sizes.
 */

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "snark/curve.h"

namespace zkp::core {
namespace {

using snark::Bn254;
using snark::Bls381;

TEST(StageMeta, NamesAndFootprints)
{
    EXPECT_STREQ(stageName(Stage::Compile), "compile");
    EXPECT_STREQ(stageName(Stage::Verifying), "verifying");
    EXPECT_EQ(kAllStages.size(), 5u);
    // At moderate sizes verify has the largest hot-code footprint
    // (JS bigint + tower); the generated witness code overtakes it at
    // large circuit sizes.
    for (Stage s : kAllStages)
        EXPECT_LE(stageFootprintUops(s, 512),
                  stageFootprintUops(Stage::Verifying, 512));
    EXPECT_GT(stageFootprintUops(Stage::Witness, 1 << 18),
              stageFootprintUops(Stage::Verifying, 1 << 18));
}

TEST(StageRunner, RunsAllStagesInOrderAndOutOfOrder)
{
    StageRunner<Bn254> runner(32);
    for (Stage s : kAllStages) {
        StageRun run = runner.run(s);
        EXPECT_GT(run.seconds, 0.0) << stageName(s);
        EXPECT_GT(run.counters.instructions(), 0u) << stageName(s);
    }
    EXPECT_TRUE(runner.lastVerifyOk());

    // A fresh runner asked directly for the last stage must satisfy
    // prerequisites itself.
    StageRunner<Bn254> direct(16);
    StageRun run = direct.run(Stage::Verifying);
    EXPECT_TRUE(direct.lastVerifyOk());
    EXPECT_GT(run.counters.instructions(), 0u);
}

TEST(StageRunner, CountersIsolatePerStage)
{
    StageRunner<Bn254> runner(64);
    StageRun compile = runner.run(Stage::Compile);
    StageRun witness = runner.run(Stage::Witness);

    // Witness is interpreter work: it must record gate dispatches;
    // compile must record allocations; and setup dwarfs both.
    EXPECT_GT(witness.counters.prim[(std::size_t)
                                        sim::PrimOp::GateDispatch],
              0u);
    EXPECT_GT(compile.counters.prim[(std::size_t)sim::PrimOp::Alloc],
              0u);
    StageRun setup = runner.run(Stage::Setup);
    EXPECT_GT(setup.counters.instructions(),
              10 * witness.counters.instructions());
}

TEST(StageRunner, DeterministicCounters)
{
    StageRunner<Bn254> a(32), b(32);
    auto ra = a.run(Stage::Witness);
    auto rb = b.run(Stage::Witness);
    EXPECT_EQ(ra.counters.instructions(), rb.counters.instructions());
    EXPECT_EQ(ra.counters.loads, rb.counters.loads);
}

TEST(ScalingFit, AmdahlRecoversKnownFraction)
{
    for (double s : {0.05, 0.3, 0.7}) {
        std::vector<SpeedupPoint> pts;
        for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u})
            pts.emplace_back(n, amdahlSpeedup(s, n));
        EXPECT_NEAR(fitAmdahlSerial(pts), s, 0.01) << s;
    }
}

TEST(ScalingFit, GustafsonRecoversKnownFraction)
{
    for (double s : {0.1, 0.5, 0.9}) {
        std::vector<SpeedupPoint> pts;
        for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u})
            pts.emplace_back(n, gustafsonSpeedup(s, n));
        EXPECT_NEAR(fitGustafsonSerial(pts), s, 1e-6) << s;
    }
}

TEST(ScalingFit, EdgeCases)
{
    EXPECT_DOUBLE_EQ(fitAmdahlSerial({}), 1.0);
    EXPECT_DOUBLE_EQ(fitGustafsonSerial({}), 1.0);
    // Fully serial: speedup 1 at every thread count.
    std::vector<SpeedupPoint> flat{{1, 1.0}, {8, 1.0}, {32, 1.0}};
    EXPECT_GT(fitAmdahlSerial(flat), 0.95);
    // Perfect scaling.
    std::vector<SpeedupPoint> perfect{{1, 1.0}, {8, 8.0}, {32, 32.0}};
    EXPECT_LT(fitAmdahlSerial(perfect), 0.01);
}

TEST(ScalingModel, MonotoneAndBounded)
{
    const auto& i9 = sim::cpuI9_13900K();
    double prev = 0;
    for (unsigned t : {1u, 2u, 4u, 8u, 16u, 24u}) {
        double s = modelStrongSpeedup(1.0, 0.8, t, i9);
        EXPECT_GE(s, prev * 0.99);
        EXPECT_LE(s, (double)t + 1e-9);
        prev = s;
    }
    // Fully serial work cannot speed up.
    EXPECT_LE(modelStrongSpeedup(1.0, 0.0, 16, i9), 1.0);
    // Tiny tasks degrade at high thread counts (spawn overhead) —
    // the paper's 2^10-compile observation.
    double small_18 = modelStrongSpeedup(0.0005, 0.0004, 18, i9);
    double small_24 = modelStrongSpeedup(0.0005, 0.0004, 24, i9);
    EXPECT_LT(small_24, small_18);
}

TEST(EffectiveCapacity, ReflectsCoreTopology)
{
    const auto& i9 = sim::cpuI9_13900K();
    EXPECT_DOUBLE_EQ(i9.effectiveCapacity(1), 1.0);
    EXPECT_DOUBLE_EQ(i9.effectiveCapacity(8), 8.0);
    // E-cores count less than P-cores.
    EXPECT_LT(i9.effectiveCapacity(24), 24.0);
    EXPECT_GT(i9.effectiveCapacity(24), 8.0);
    // SMT adds a little beyond 24 threads.
    EXPECT_GT(i9.effectiveCapacity(32), i9.effectiveCapacity(24));

    const auto& i7 = sim::cpuI7_8650U();
    EXPECT_DOUBLE_EQ(i7.effectiveCapacity(4), 4.0);
    EXPECT_LT(i7.effectiveCapacity(8), 8.0);
}

TEST(UnitCostsTest, Sane)
{
    const auto& u = UnitCosts::get();
    EXPECT_GT(u.nsPerImul, 0.0);
    EXPECT_LT(u.nsPerImul, 100.0);
    EXPECT_GT(u.nsPerMemcpyByte, 0.0);
    EXPECT_LT(u.nsPerMemcpyByte, 10.0);
    EXPECT_GT(u.nsPerAlloc, 0.0);
}

TEST(FunctionAttribution, SumsToHundredAndRanksBigintInSetup)
{
    StageRunner<Bn254> runner(256);
    StageRun setup = runner.run(Stage::Setup);
    auto shares = attributeFunctions(setup, 4);
    double total = 0;
    for (const auto& f : shares)
        total += f.pct;
    EXPECT_NEAR(total, 100.0, 1e-6);
    // Setup is field-arithmetic dominated: bigint must be the top
    // non-"other" entry.
    for (const auto& f : shares) {
        if (f.function == "other")
            continue;
        EXPECT_EQ(f.function, "bigint");
        break;
    }
}

TEST(OpcodeMixTest, WitnessIsMostControlHeavy)
{
    SweepConfig cfg;
    cfg.sizes = {256};
    auto cells = runCodeAnalysis<Bn254>(cfg);
    ASSERT_EQ(cells.size(), kNumStages);

    double witness_ctrl = 0, max_other_ctrl = 0;
    for (const auto& c : cells) {
        EXPECT_NEAR(c.mix.computePct + c.mix.controlPct + c.mix.dataPct,
                    100.0, 1e-6);
        if (c.stage == Stage::Witness)
            witness_ctrl = c.mix.controlPct;
        else
            max_other_ctrl = std::max(max_other_ctrl, c.mix.controlPct);
    }
    // Table V: witness is the control-flow-intensive stage.
    EXPECT_GT(witness_ctrl, max_other_ctrl);
}

TEST(TopDownAnalysis, ProducesFullGrid)
{
    SweepConfig cfg;
    cfg.sizes = {128};
    auto cells = runTopDownAnalysis<Bn254>(cfg);
    EXPECT_EQ(cells.size(), kNumStages * 3); // 5 stages x 3 CPUs
    for (const auto& c : cells) {
        const auto& r = c.result;
        EXPECT_NEAR(r.frontend + r.badSpeculation + r.backend +
                        r.retiring,
                    1.0, 1e-9);
    }
}

TEST(MemoryAnalysis, LoadShapesMatchFig5)
{
    SweepConfig small_cfg, big_cfg;
    small_cfg.sizes = {256};
    big_cfg.sizes = {2048};
    auto small = runMemoryAnalysis<Bn254>(small_cfg);
    auto big = runMemoryAnalysis<Bn254>(big_cfg);

    auto loads_of = [](const std::vector<MemoryCell>& cells, Stage s) {
        for (const auto& c : cells)
            if (c.stage == s)
                return c.loads;
        return 0.0;
    };

    for (const auto& c : big) {
        for (const auto& pc : c.perCpu) {
            EXPECT_GE(pc.mpki, 0.0);
            EXPECT_LE(pc.avgBandwidthGBps, 90.0);
        }
    }

    // Fig. 5: setup load volume grows with the constraint count and
    // dwarfs witness; verifying stays constant in n.
    EXPECT_GT(loads_of(big, Stage::Setup),
              4 * loads_of(small, Stage::Setup));
    EXPECT_GT(loads_of(big, Stage::Setup),
              50 * loads_of(big, Stage::Witness));
    EXPECT_LT(loads_of(big, Stage::Verifying),
              1.5 * loads_of(small, Stage::Verifying));
}

TEST(StrongScaling, ProvingParallelAndVerifyConstant)
{
    SweepConfig cfg;
    cfg.sizes = {1024};
    std::vector<unsigned> threads{1, 2, 4, 8, 16, 32};
    auto curves =
        runStrongScaling<Bn254>(cfg, threads, sim::cpuI9_13900K());
    ASSERT_EQ(curves.size(), kNumStages);

    double proving_frac = 0, verify_frac = 1;
    for (const auto& c : curves) {
        EXPECT_EQ(c.speedups.size(), threads.size());
        EXPECT_GE(c.fittedSerial, 0.0);
        EXPECT_LE(c.fittedSerial, 1.0);
        if (c.stage == Stage::Proving)
            proving_frac = c.measuredParallelFraction;
        if (c.stage == Stage::Verifying)
            verify_frac = c.measuredParallelFraction;
    }
    // KT5: proving has far more parallelism than verifying.
    EXPECT_GT(proving_frac, verify_frac);
    EXPECT_GT(proving_frac, 0.4);
}

TEST(WeakScaling, WitnessAndVerifyNearLinear)
{
    std::vector<unsigned> threads{1, 2, 4};
    auto curves =
        runWeakScaling<Bn254>(256, threads, sim::cpuI9_13900K());
    ASSERT_EQ(curves.size(), kNumStages);
    for (const auto& c : curves) {
        EXPECT_EQ(c.speedups.size(), threads.size());
        // WS speedup at 1 thread is 1 by construction.
        EXPECT_NEAR(c.speedups[0].second, 1.0, 0.25);
    }
}

TEST(BandwidthConcurrency, ParallelStagesSaturateCores)
{
    const auto& i9 = sim::cpuI9_13900K();
    EXPECT_GT(stageBandwidthConcurrency(Stage::Proving, i9),
              stageBandwidthConcurrency(Stage::Witness, i9));
    EXPECT_GE(stageBandwidthConcurrency(Stage::Witness, i9), 1.0);
}

TEST(CrossCurve, BlsPipelineRunsToo)
{
    StageRunner<Bls381> runner(16);
    runner.run(Stage::Verifying);
    EXPECT_TRUE(runner.lastVerifyOk());
}

} // namespace
} // namespace zkp::core
