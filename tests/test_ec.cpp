/**
 * @file
 * Group-law, scalar-multiplication and MSM tests for all four groups.
 */

#include <gtest/gtest.h>

#include "common/bignum.h"
#include "common/rng.h"
#include "ec/groups.h"
#include "ec/msm.h"

namespace zkp::ec {
namespace {

template <typename Group>
class GroupTest : public ::testing::Test
{
};

using Groups = ::testing::Types<Bn254G1, Bn254G2, Bls381G1, Bls381G2>;
TYPED_TEST_SUITE(GroupTest, Groups);

TYPED_TEST(GroupTest, GeneratorOnCurve)
{
    using G = TypeParam;
    EXPECT_TRUE(G::generator().isOnCurve(G::b()));
    EXPECT_FALSE(G::generator().infinity);
}

TYPED_TEST(GroupTest, GeneratorHasOrderR)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    auto r = G::Scalar::kModulus;
    EXPECT_TRUE(g.mulScalar(r).isInfinity());
    EXPECT_FALSE(g.mulScalar(BigInt<4>(12345)).isInfinity());
}

TYPED_TEST(GroupTest, AdditionLaws)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    auto p = g.mulScalar((u64)17);
    auto q = g.mulScalar((u64)23);
    auto r = g.mulScalar((u64)99);

    EXPECT_EQ(p + q, q + p);
    EXPECT_EQ((p + q) + r, p + (q + r));
    EXPECT_EQ(p + decltype(p)::infinity(), p);
    EXPECT_TRUE((p - p).isInfinity());
    EXPECT_EQ(p + q, g.mulScalar((u64)40));
}

TYPED_TEST(GroupTest, DoublingMatchesAddition)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    EXPECT_EQ(g.doubled(), g + g);
    EXPECT_EQ(g.doubled().doubled(), g.mulScalar((u64)4));
    // Doubling infinity stays at infinity.
    EXPECT_TRUE(decltype(g)::infinity().doubled().isInfinity());
}

TYPED_TEST(GroupTest, MixedAdditionMatchesFull)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    auto p = g.mulScalar((u64)1234567);
    auto q_aff = g.mulScalar((u64)7654321).toAffine();
    EXPECT_EQ(p.addMixed(q_aff), p + decltype(p)(q_aff));
    // Mixed-add corner cases: same point (doubling) and inverse.
    auto p_aff = p.toAffine();
    EXPECT_EQ(p.addMixed(p_aff), p.doubled());
    EXPECT_TRUE(p.addMixed(p_aff.negated()).isInfinity());
    EXPECT_EQ(p.addMixed(typename G::Affine()), p);
}

TYPED_TEST(GroupTest, AffineRoundTrip)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    auto p = g.mulScalar((u64)424242);
    auto aff = p.toAffine();
    EXPECT_TRUE(aff.isOnCurve(G::b()));
    EXPECT_EQ(typename G::Jacobian(aff), p);
    // Infinity round trip.
    EXPECT_TRUE(decltype(p)::infinity().toAffine().infinity);
}

TYPED_TEST(GroupTest, ScalarMulDistributes)
{
    using G = TypeParam;
    using Fr = typename G::Scalar;
    Rng rng(21);
    typename G::Jacobian g{G::generator()};
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    auto lhs = g.mulScalar((a + b).toBigInt());
    auto rhs = g.mulScalar(a.toBigInt()) + g.mulScalar(b.toBigInt());
    EXPECT_EQ(lhs, rhs);
    // (a*b)G == a(bG)
    EXPECT_EQ(g.mulScalar((a * b).toBigInt()),
              g.mulScalar(b.toBigInt()).mulScalar(a.toBigInt()));
}

TYPED_TEST(GroupTest, BatchToAffine)
{
    using G = TypeParam;
    typename G::Jacobian g{G::generator()};
    std::vector<typename G::Jacobian> pts;
    for (u64 k = 0; k < 10; ++k)
        pts.push_back(g.mulScalar(k)); // includes infinity at k=0
    auto affs = batchToAffine(pts);
    ASSERT_EQ(affs.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(affs[i], pts[i].toAffine());
}

TYPED_TEST(GroupTest, MsmMatchesNaive)
{
    using G = TypeParam;
    using Fr = typename G::Scalar;
    using Repr = typename Fr::Repr;
    Rng rng(22);
    typename G::Jacobian g{G::generator()};

    const std::size_t n = 64;
    std::vector<typename G::Affine> points;
    std::vector<Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        points.push_back(g.mulScalar(rng.nextBelow(1000) + 1).toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    auto fast = msm<typename G::Jacobian>(points.data(), scalars.data(), n);
    auto naive =
        msmNaive<typename G::Jacobian>(points.data(), scalars.data(), n);
    EXPECT_EQ(fast, naive);
}

TYPED_TEST(GroupTest, MsmThreadedMatchesSerial)
{
    using G = TypeParam;
    using Fr = typename G::Scalar;
    using Repr = typename Fr::Repr;
    Rng rng(23);
    typename G::Jacobian g{G::generator()};

    const std::size_t n = 300;
    std::vector<typename G::Affine> points;
    std::vector<Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        points.push_back(g.mulScalar(rng.nextBelow(997) + 1).toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    auto serial =
        msmSerial<typename G::Jacobian>(points.data(), scalars.data(), n);
    auto threaded =
        msm<typename G::Jacobian>(points.data(), scalars.data(), n, 4);
    EXPECT_EQ(serial, threaded);
}

TYPED_TEST(GroupTest, MsmEdgeCases)
{
    using G = TypeParam;
    using Repr = typename G::Scalar::Repr;
    using J = typename G::Jacobian;
    J g{G::generator()};

    // Empty input.
    EXPECT_TRUE((msm<J, typename G::Affine, Repr>(nullptr, nullptr, 0))
                    .isInfinity());

    // All-zero scalars.
    std::vector<typename G::Affine> pts(5, G::generator());
    std::vector<Repr> zeros(5);
    EXPECT_TRUE(msm<J>(pts.data(), zeros.data(), 5).isInfinity());

    // Single element.
    std::vector<Repr> one{Repr(7)};
    EXPECT_EQ(msm<J>(pts.data(), one.data(), 1), g.mulScalar((u64)7));
}

TEST(MsmWindow, GrowsWithSize)
{
    EXPECT_LE(msmWindowBits(16), msmWindowBits(1 << 10));
    EXPECT_LE(msmWindowBits(1 << 10), msmWindowBits(1 << 20));
    EXPECT_GE(msmWindowBits(1), 1u);
    EXPECT_LE(msmWindowBits(std::size_t(1) << 40), 16u);
}

} // namespace
} // namespace zkp::ec
