/**
 * @file
 * Tests for the persistent fork-join thread pool behind parallelFor:
 * pool reuse across regions, chunked-cursor coverage, nested-call
 * safety, hook / worker-lane / parallelWorkSeconds invariants under
 * repeated regions, and concurrent top-level callers. Doubles as the
 * ThreadSanitizer stress target in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace zkp {
namespace {

TEST(ThreadPoolTest, ReusesWorkersAcrossRegions)
{
    // Warm the pool, then check repeated regions never grow it.
    parallelFor(1024, 4, [](std::size_t, std::size_t, std::size_t) {});
    const std::size_t workers = ThreadPool::instance().workerCount();
    ASSERT_GE(workers, 4u);

    const std::uint64_t before = ThreadPool::instance().regionsExecuted();
    for (int rep = 0; rep < 50; ++rep) {
        std::atomic<std::size_t> total{0};
        parallelFor(257, 4,
                    [&](std::size_t, std::size_t b, std::size_t e) {
                        total += e - b;
                    });
        ASSERT_EQ(total.load(), 257u);
    }
    EXPECT_EQ(ThreadPool::instance().workerCount(), workers);
    EXPECT_EQ(ThreadPool::instance().regionsExecuted(), before + 50);
}

TEST(ThreadPoolTest, GrowsLazilyToLargestRequest)
{
    parallelFor(64, 2, [](std::size_t, std::size_t, std::size_t) {});
    const std::size_t after2 = ThreadPool::instance().workerCount();
    parallelFor(64, 8, [](std::size_t, std::size_t, std::size_t) {});
    EXPECT_GE(ThreadPool::instance().workerCount(), 8u);
    EXPECT_GE(ThreadPool::instance().workerCount(), after2);
}

TEST(ThreadPoolTest, ChunkedDispatchCoversRangeExactlyOnce)
{
    // n large enough that the cursor hands out many chunks per slot.
    constexpr std::size_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(kN, 8, [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i]++;
    });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, SlotIdsStayInRange)
{
    constexpr std::size_t kThreads = 6;
    std::atomic<std::size_t> bad{0};
    parallelFor(10000, kThreads,
                [&](std::size_t slot, std::size_t, std::size_t) {
                    if (slot >= kThreads)
                        bad++;
                });
    EXPECT_EQ(bad.load(), 0u);
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock)
{
    // A region body issuing its own parallelFor must not re-enter the
    // pool (deadlock) and must still cover its range.
    std::vector<std::atomic<int>> hits(4096);
    parallelFor(8, 4, [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t outer = b; outer < e; ++outer) {
            EXPECT_TRUE(ThreadPool::onWorkerThread());
            parallelFor(512, 4,
                        [&](std::size_t slot, std::size_t ib,
                            std::size_t ie) {
                            // Inline: the nested region runs as one
                            // chunk on slot 0 of the calling worker.
                            EXPECT_EQ(slot, 0u);
                            EXPECT_EQ(ib, 0u);
                            EXPECT_EQ(ie, 512u);
                            for (std::size_t i = ib; i < ie; ++i)
                                hits[outer * 512 + i]++;
                        });
        }
    });
    for (auto& h : hits)
        ASSERT_EQ(h.load(), 1);
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ThreadPoolTest, HookRunsOncePerSlotPerRegion)
{
    constexpr std::size_t kThreads = 4;
    static std::atomic<std::size_t> hook_calls;
    hook_calls = 0;
    auto prev = setWorkerDoneHook([] { hook_calls++; });

    constexpr int kRegions = 20;
    for (int rep = 0; rep < kRegions; ++rep)
        parallelFor(4096, kThreads,
                    [](std::size_t, std::size_t, std::size_t) {});
    setWorkerDoneHook(prev);

    // Every participating slot runs the hook exactly once per region,
    // even slots whose chunks were stolen by faster workers.
    EXPECT_EQ(hook_calls.load(), kRegions * kThreads);
}

TEST(ThreadPoolTest, HookNotRunOnInlinePaths)
{
    static std::atomic<std::size_t> hook_calls;
    hook_calls = 0;
    auto prev = setWorkerDoneHook([] { hook_calls++; });
    parallelFor(100, 1, [](std::size_t, std::size_t, std::size_t) {});
    parallelFor(1, 8, [](std::size_t, std::size_t, std::size_t) {});
    setWorkerDoneHook(prev);
    EXPECT_EQ(hook_calls.load(), 0u);
}

TEST(ThreadPoolTest, ParallelWorkSecondsAccumulatesAcrossRegions)
{
    resetParallelWorkSeconds();
    ASSERT_EQ(parallelWorkSeconds(), 0.0);

    volatile std::uint64_t sink = 0;
    for (int rep = 0; rep < 3; ++rep)
        parallelFor(4, 2, [&](std::size_t, std::size_t b, std::size_t e) {
            std::uint64_t s = 0;
            for (std::size_t i = b; i < e; ++i)
                for (int k = 0; k < 200000; ++k)
                    s += i * k;
            sink = sink + s;
        });
    const double t = parallelWorkSeconds();
    EXPECT_GT(t, 0.0);

    // Monotone: another region adds to the stopwatch.
    parallelFor(4, 2, [&](std::size_t, std::size_t b, std::size_t e) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i)
            for (int k = 0; k < 200000; ++k)
                s += i * k;
        sink = sink + s;
    });
    EXPECT_GT(parallelWorkSeconds(), t);

    resetParallelWorkSeconds();
    EXPECT_EQ(parallelWorkSeconds(), 0.0);
}

TEST(ThreadPoolTest, WorkerLanesStableUnderRepeatedRegions)
{
    obs::stopTracing();
    obs::startTracing("");
    constexpr std::size_t kThreads = 3;
    constexpr int kRegions = 5;
    for (int rep = 0; rep < kRegions; ++rep)
        parallelFor(999, kThreads,
                    [](std::size_t, std::size_t, std::size_t) {});
    obs::stopTracing();

    std::size_t worker_spans = 0;
    std::set<obs::u32> lanes;
    for (const auto& s : obs::collectedSpans()) {
        if (std::strcmp(s.name, "worker") != 0)
            continue;
        ++worker_spans;
        ASSERT_GE(s.tid, obs::kWorkerLaneBase);
        ASSERT_LT(s.tid, obs::kWorkerLaneBase + kThreads);
        lanes.insert(s.tid);
    }
    // One worker span per slot per region, always on the same lanes.
    EXPECT_EQ(worker_spans, (std::size_t)kRegions * kThreads);
    EXPECT_EQ(lanes.size(), kThreads);
    obs::clearTrace();
}

TEST(ThreadPoolTest, ConcurrentTopLevelRegionsSerializeSafely)
{
    // Two non-pool threads issue regions at once; regions serialize
    // on the pool but both must complete correctly.
    std::vector<std::atomic<int>> a(20000), b(20000);
    std::thread t1([&] {
        for (int rep = 0; rep < 10; ++rep)
            parallelFor(a.size(), 4,
                        [&](std::size_t, std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                                a[i]++;
                        });
    });
    std::thread t2([&] {
        for (int rep = 0; rep < 10; ++rep)
            parallelFor(b.size(), 4,
                        [&](std::size_t, std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                                b[i]++;
                        });
    });
    t1.join();
    t2.join();
    for (auto& x : a)
        ASSERT_EQ(x.load(), 10);
    for (auto& x : b)
        ASSERT_EQ(x.load(), 10);
}

TEST(ThreadPoolTest, StressManySmallRegionsVaryingWidth)
{
    // TSan target: rapid-fire regions of varying width and size.
    std::atomic<std::uint64_t> total{0};
    for (int rep = 0; rep < 200; ++rep) {
        const std::size_t threads = 1 + (std::size_t)rep % 8;
        const std::size_t n = 1 + (std::size_t)(rep * 37) % 500;
        parallelFor(n, threads,
                    [&](std::size_t, std::size_t b, std::size_t e) {
                        total += e - b;
                    });
    }
    std::uint64_t expect = 0;
    for (int rep = 0; rep < 200; ++rep)
        expect += 1 + (std::size_t)(rep * 37) % 500;
    EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPoolTest, SaturationFromExternalThreads)
{
    // Regression test for the layering the proof service relies on
    // (src/serve/): many plain std::threads saturating parallelFor
    // concurrently must serialize region-by-region on the pool's
    // region mutex and all make progress — no deadlock, no lost
    // updates. Nested regions inside each top-level region run
    // inline, exercising the pool's no-re-entry rule at the same
    // time.
    constexpr std::size_t kExternal = 8;
    constexpr int kRegionsEach = 25;
    std::atomic<std::uint64_t> total{0};
    std::vector<std::thread> external;
    for (std::size_t t = 0; t < kExternal; ++t)
        external.emplace_back([&] {
            for (int rep = 0; rep < kRegionsEach; ++rep)
                parallelFor(
                    64, 4,
                    [&](std::size_t, std::size_t b, std::size_t e) {
                        // Nested region: runs inline on the worker.
                        parallelFor(e - b, 2,
                                    [&](std::size_t, std::size_t nb,
                                        std::size_t ne) {
                                        total += ne - nb;
                                    });
                    });
        });
    for (auto& t : external)
        t.join();
    EXPECT_EQ(total.load(),
              (std::uint64_t)kExternal * kRegionsEach * 64);
}

} // namespace
} // namespace zkp
