/**
 * @file
 * Extended hardware-model tests: parameterized cache-geometry sweeps,
 * prefetcher behaviour, top-down model monotonicity properties, and
 * trace plumbing under threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/branch.h"
#include "sim/cache.h"
#include "sim/counters.h"
#include "sim/cpu_model.h"
#include "sim/memtrace.h"
#include "sim/topdown.h"

namespace zkp::sim {
namespace {

// ---------------------------------------------------------------------
// Cache geometry sweeps
// ---------------------------------------------------------------------

struct Geometry
{
    std::size_t sizeBytes;
    unsigned assoc;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometrySweep, WorkingSetBoundary)
{
    const auto [size, assoc] = GetParam();
    CacheLevel c({size, assoc, 64});

    // A working set that fits: after one warmup pass, zero misses.
    const u64 fit_lines = size / 64;
    for (u64 i = 0; i < fit_lines; ++i)
        c.access(i * 64);
    const u64 warm = c.stats().misses;
    EXPECT_EQ(warm, fit_lines); // compulsory only
    for (int round = 0; round < 3; ++round)
        for (u64 i = 0; i < fit_lines; ++i)
            c.access(i * 64);
    EXPECT_EQ(c.stats().misses, warm) << "capacity eviction on a "
                                         "fitting working set";

    // Doubling the footprint with LRU round-robin thrashes.
    CacheLevel d({size, assoc, 64});
    for (int round = 0; round < 3; ++round)
        for (u64 i = 0; i < 2 * fit_lines; ++i)
            d.access(i * 64);
    EXPECT_GT(d.stats().missRate(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(Geometry{4096, 1}, Geometry{4096, 4},
                      Geometry{32768, 8}, Geometry{65536, 16}));

TEST(CacheConflicts, LowAssociativityConflictMisses)
{
    // Addresses mapping to one set: a direct-mapped cache thrashes
    // where an 8-way cache holds them all.
    CacheConfig direct{64 * 64, 1, 64}; // 64 sets
    CacheConfig assoc8{64 * 64, 8, 64}; // 8 sets
    CacheLevel cd(direct), ca(assoc8);
    for (int round = 0; round < 10; ++round)
        for (u64 k = 0; k < 4; ++k) {
            cd.access(k * 64 * 64); // same set in direct-mapped
            ca.access(k * 8 * 64);  // same set in the 8-way
        }
    EXPECT_GT(cd.stats().missRate(), 0.9);
    EXPECT_LT(ca.stats().missRate(), 0.2);
}

TEST(Prefetcher, BackwardStreamIsNotPrefetched)
{
    // The next-line detector only covers forward streams; a backward
    // stream misses once per line.
    auto h = cpuI9_13900K().makeHierarchy();
    const u64 lines = 50000;
    for (u64 i = lines; i-- > 0;)
        h.access(i * 64, 8, false, (lines - i) * 100);
    EXPECT_GT((double)h.llcLoadMisses(), 0.9 * lines);
}

TEST(Prefetcher, StrideTwoDefeatsNextLine)
{
    auto h = cpuI9_13900K().makeHierarchy();
    const u64 lines = 50000;
    for (u64 i = 0; i < lines; ++i)
        h.access(i * 128, 8, false, i * 100); // every other line
    EXPECT_GT((double)h.llcLoadMisses(), 0.9 * lines);
}

// ---------------------------------------------------------------------
// Top-down model properties
// ---------------------------------------------------------------------

StageEvents
baselineEvents()
{
    StageEvents ev;
    ev.counters.compute = 2'000'000;
    ev.counters.control = 600'000;
    ev.counters.data = 1'400'000;
    ev.counters.branches = 300'000;
    ev.counters.imuls = 500'000;
    ev.l1Misses = 30'000;
    ev.l2Misses = 8'000;
    ev.llcMisses = 1'000;
    ev.branchEvents = 100'000;
    ev.branchMispredicts = 2'000;
    ev.hotCodeUops = 2'000;
    return ev;
}

TEST(TopDownProperties, MoreLlcMissesMoreBackend)
{
    auto ev = baselineEvents();
    auto base = classifyTopDown(ev, cpuI9_13900K());
    ev.llcMisses *= 50;
    auto missy = classifyTopDown(ev, cpuI9_13900K());
    EXPECT_GT(missy.backend, base.backend);
    EXPECT_LT(missy.retiring, base.retiring);
    EXPECT_GT(missy.totalCycles, base.totalCycles);
}

TEST(TopDownProperties, MoreMispredictsMoreBadSpec)
{
    auto ev = baselineEvents();
    auto base = classifyTopDown(ev, cpuI5_11400());
    ev.branchMispredicts = 40'000;
    auto spec = classifyTopDown(ev, cpuI5_11400());
    EXPECT_GT(spec.badSpeculation, base.badSpeculation);
}

TEST(TopDownProperties, BiggerCodeMoreFrontend)
{
    auto ev = baselineEvents();
    auto base = classifyTopDown(ev, cpuI7_8650U());
    ev.hotCodeUops = 500'000;
    auto fat = classifyTopDown(ev, cpuI7_8650U());
    EXPECT_GT(fat.frontend, base.frontend);
}

TEST(TopDownProperties, WiderMachineRetiresLessShare)
{
    // The same event stream on a wider core spends a *smaller*
    // fraction of slots retiring when dependency chains dominate
    // (same latency, more idle issue slots).
    auto ev = baselineEvents();
    ev.counters.imuls = 2'000'000; // heavily chained
    auto narrow = classifyTopDown(ev, cpuI7_8650U());
    auto wide = classifyTopDown(ev, cpuI9_13900K());
    EXPECT_GT(narrow.totalCycles, wide.totalCycles);
}

TEST(TopDownProperties, FractionsAlwaysNormalized)
{
    // Degenerate inputs keep the fractions a valid distribution.
    for (const CpuModel* cpu : allCpuModels()) {
        for (double scale : {0.0, 1.0, 1000.0}) {
            auto ev = baselineEvents();
            ev.llcMisses *= scale;
            ev.branchMispredicts *= scale;
            ev.hotCodeUops *= (scale + 1);
            auto r = classifyTopDown(ev, *cpu);
            EXPECT_NEAR(r.frontend + r.badSpeculation + r.backend +
                            r.retiring,
                        1.0, 1e-9);
            EXPECT_GE(r.frontend, 0);
            EXPECT_GE(r.badSpeculation, 0);
            EXPECT_GE(r.backend, 0);
            EXPECT_GE(r.retiring, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Trace plumbing
// ---------------------------------------------------------------------

TEST(TracePlumbing, MultipleSinksAllSeeAccesses)
{
    struct Recorder : TraceSink
    {
        u64 n = 0;
        void onAccess(u64, u32, bool, u64) override { ++n; }
        void onBranch(u32, bool) override { ++n; }
    } r1, r2;
    int x = 0;
    {
        ScopedTrace scope({&r1, &r2});
        traceLoad(&x, 4);
        branchEvent(1, true);
    }
    EXPECT_EQ(r1.n, 2u);
    EXPECT_EQ(r2.n, 2u);
}

TEST(TracePlumbing, NestedScopesRestore)
{
    struct Recorder : TraceSink
    {
        u64 n = 0;
        void onAccess(u64, u32, bool, u64) override { ++n; }
    } outer, inner;
    int x = 0;
    {
        ScopedTrace a({&outer});
        traceLoad(&x, 4);
        {
            ScopedTrace b({&inner});
            traceLoad(&x, 4);
        }
        traceLoad(&x, 4);
    }
    EXPECT_EQ(outer.n, 2u);
    EXPECT_EQ(inner.n, 1u);
}

TEST(TracePlumbing, TraceIsPerThread)
{
    struct Recorder : TraceSink
    {
        std::atomic<u64> n{0};
        void onAccess(u64, u32, bool, u64) override { ++n; }
    } rec;
    int x = 0;
    ScopedTrace scope({&rec});
    traceLoad(&x, 4);
    std::thread other([&] {
        // No trace installed on this thread.
        traceLoad(&x, 4);
    });
    other.join();
    EXPECT_EQ(rec.n.load(), 1u);
}

TEST(BandwidthWindows, PeakAtBurst)
{
    auto h = cpuI9_13900K().makeHierarchy(1000);
    // Two quiet windows around one burst window; use a stride that
    // defeats the prefetcher so traffic is demand-only.
    u64 addr = 0;
    auto touch = [&](u64 icount, int n) {
        for (int i = 0; i < n; ++i) {
            h.access(addr, 8, false, icount);
            addr += 4096;
        }
    };
    touch(100, 2);    // window 0
    touch(1500, 50);  // window 1: burst
    touch(2500, 2);   // window 2
    ASSERT_GE(h.windows().size(), 3u);
    EXPECT_EQ(h.peakWindowBytes(), 50u * 64u);
}

} // namespace
} // namespace zkp::sim
