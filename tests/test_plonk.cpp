/**
 * @file
 * KZG commitment and PlonK tests: scheme correctness, soundness smoke
 * tests, and parameterized sweeps over circuit sizes.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "snark/plonk.h"

namespace zkp::snark {
namespace {

using Fr = Bn254::Fr;
using KzgB = Kzg<Bn254>;
using PlonkB = Plonk<Bn254>;

// ---------------------------------------------------------------------
// KZG
// ---------------------------------------------------------------------

const KzgB::Srs&
srs()
{
    static const KzgB::Srs s = [] {
        Rng rng(81);
        return KzgB::setup(64, rng);
    }();
    return s;
}

TEST(KzgTest, CommitOpenVerify)
{
    Rng rng(82);
    std::vector<Fr> p(17);
    for (auto& c : p)
        c = Fr::random(rng);
    auto commitment = KzgB::commit(srs(), p);

    Fr z = Fr::random(rng);
    Fr v = KzgB::evaluate(p, z);
    auto w = KzgB::open(srs(), p, z);
    EXPECT_TRUE(KzgB::verify(srs(), commitment, z, v, w));

    // Wrong value rejected.
    EXPECT_FALSE(KzgB::verify(srs(), commitment, z, v + Fr::one(), w));
    // Wrong point rejected.
    EXPECT_FALSE(KzgB::verify(srs(), commitment, z + Fr::one(), v, w));
    // Proof for another polynomial rejected.
    std::vector<Fr> q = p;
    q[3] += Fr::one();
    auto wq = KzgB::open(srs(), q, z);
    EXPECT_FALSE(KzgB::verify(srs(), commitment, z, v, wq));
}

TEST(KzgTest, ConstantAndZeroPolynomials)
{
    Rng rng(83);
    Fr z = Fr::random(rng);

    std::vector<Fr> constant{Fr::fromU64(7)};
    auto c = KzgB::commit(srs(), constant);
    auto w = KzgB::open(srs(), constant, z);
    EXPECT_TRUE(KzgB::verify(srs(), c, z, Fr::fromU64(7), w));

    std::vector<Fr> zero;
    auto cz = KzgB::commit(srs(), zero);
    auto wz = KzgB::open(srs(), zero, z);
    EXPECT_TRUE(KzgB::verify(srs(), cz, z, Fr::zero(), wz));
}

TEST(KzgTest, QuotientIsExact)
{
    Rng rng(84);
    std::vector<Fr> p(9);
    for (auto& c : p)
        c = Fr::random(rng);
    Fr z = Fr::random(rng);
    auto q = KzgB::quotientAt(p, z);
    // q(X) (X - z) + p(z) == p(X), checked at a random point.
    Fr x = Fr::random(rng);
    EXPECT_EQ(KzgB::evaluate(q, x) * (x - z) + KzgB::evaluate(p, z),
              KzgB::evaluate(p, x));
}

TEST(KzgTest, BatchOpenVerify)
{
    Rng rng(85);
    std::vector<Fr> p1(10), p2(20), p3(5);
    for (auto* p : {&p1, &p2, &p3})
        for (auto& c : *p)
            c = Fr::random(rng);
    Fr z = Fr::random(rng);
    Fr nu = Fr::random(rng);

    std::vector<KzgB::Commitment> cs{KzgB::commit(srs(), p1),
                                     KzgB::commit(srs(), p2),
                                     KzgB::commit(srs(), p3)};
    std::vector<Fr> vals{KzgB::evaluate(p1, z), KzgB::evaluate(p2, z),
                         KzgB::evaluate(p3, z)};
    auto w = KzgB::openBatch(srs(), {&p1, &p2, &p3}, z, nu);
    EXPECT_TRUE(KzgB::verifyBatch(srs(), cs, z, vals, nu, w));

    auto bad = vals;
    bad[1] += Fr::one();
    EXPECT_FALSE(KzgB::verifyBatch(srs(), cs, z, bad, nu, w));
}

// ---------------------------------------------------------------------
// PlonK
// ---------------------------------------------------------------------

TEST(PlonkTest, ExponentiationCompleteness)
{
    PlonkExponentiation<Fr> circ(16);
    Rng rng(86);
    auto keys = PlonkB::setup(circ.builder, rng);

    Fr x = Fr::random(rng);
    auto values = circ.assign(x);
    Fr y = x.pow(BigInt<1>(16));
    ASSERT_TRUE(PlonkB::satisfied(keys.pk, values, {y}));

    auto proof = PlonkB::prove(keys.pk, values, {y}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {y}, proof));
}

TEST(PlonkTest, RejectsWrongPublicInput)
{
    PlonkExponentiation<Fr> circ(8);
    Rng rng(87);
    auto keys = PlonkB::setup(circ.builder, rng);
    Fr x = Fr::fromU64(3);
    Fr y = x.pow(BigInt<1>(8)); // 6561
    auto proof = PlonkB::prove(keys.pk, circ.assign(x), {y}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {y}, proof));
    EXPECT_FALSE(PlonkB::verify(keys.vk, {y + Fr::one()}, proof));
    EXPECT_FALSE(PlonkB::verify(keys.vk, {Fr::zero()}, proof));
}

TEST(PlonkTest, RejectsTamperedProof)
{
    PlonkExponentiation<Fr> circ(8);
    Rng rng(88);
    auto keys = PlonkB::setup(circ.builder, rng);
    Fr x = Fr::fromU64(5);
    Fr y = x.pow(BigInt<1>(8));
    auto proof = PlonkB::prove(keys.pk, circ.assign(x), {y}, rng);

    auto t1 = proof;
    t1.evals[0] += Fr::one(); // tamper with the a-wire opening
    EXPECT_FALSE(PlonkB::verify(keys.vk, {y}, t1));

    auto t2 = proof;
    t2.zOmega += Fr::one();
    EXPECT_FALSE(PlonkB::verify(keys.vk, {y}, t2));

    auto t3 = proof;
    t3.wZeta = t3.wZetaOmega; // swap an opening proof
    EXPECT_FALSE(PlonkB::verify(keys.vk, {y}, t3));
}

TEST(PlonkTest, CopyConstraintIsEnforced)
{
    // Break a copy constraint: claim a chain wire that differs from
    // the gate outputs. The gate equations still hold per-gate, so
    // only the permutation argument can catch it.
    PlonkBuilder<Fr> b;
    PlonkVar y = b.newVar();
    PlonkVar x = b.newVar();
    PlonkVar m = b.newVar();
    b.addPublicInput(y);
    b.addMul(x, x, m);  // m = x^2
    b.addMul(m, x, y);  // y = x^3

    Rng rng(89);
    auto keys = PlonkB::setup(b, rng);

    Fr xv = Fr::fromU64(2);
    std::vector<Fr> values(b.numVars(), Fr::zero());
    values[x] = xv;
    values[m] = Fr::fromU64(4);
    values[y] = Fr::fromU64(8);
    auto good = PlonkB::prove(keys.pk, values, {Fr::fromU64(8)}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {Fr::fromU64(8)}, good));

    // satisfied() only checks per-gate equations; it cannot see a
    // violated copy constraint across gates, but the proof must fail.
    // Claim m = 6 with gate 2 using m' = 6 (2*3 inconsistency):
    // per-gate check of gate 1 fails here, so instead cheat on y:
    values[y] = Fr::fromU64(8);
    auto bad_values = values;
    bad_values[m] = Fr::fromU64(4); // consistent
    // Forge: different value for the public wire in gate 0 vs gate 2
    // is impossible through the values vector (same var), so tamper
    // at the wire level via a custom assignment path is not
    // expressible — which is exactly the guarantee. Document by
    // checking a wrong chain value fails the gate check:
    bad_values[m] = Fr::fromU64(5);
    EXPECT_FALSE(
        PlonkB::satisfied(keys.pk, bad_values, {Fr::fromU64(8)}));
}

TEST(PlonkTest, AdditionGates)
{
    // (x + x) * x = y  with x = 3 -> y = 18.
    PlonkBuilder<Fr> b;
    PlonkVar y = b.newVar();
    PlonkVar x = b.newVar();
    PlonkVar s = b.newVar();
    b.addPublicInput(y);
    b.addAdd(x, x, s);
    b.addMul(s, x, y);

    Rng rng(90);
    auto keys = PlonkB::setup(b, rng);
    std::vector<Fr> values(b.numVars(), Fr::zero());
    values[x] = Fr::fromU64(3);
    values[s] = Fr::fromU64(6);
    values[y] = Fr::fromU64(18);
    ASSERT_TRUE(PlonkB::satisfied(keys.pk, values, {Fr::fromU64(18)}));
    auto proof = PlonkB::prove(keys.pk, values, {Fr::fromU64(18)}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {Fr::fromU64(18)}, proof));
    EXPECT_FALSE(PlonkB::verify(keys.vk, {Fr::fromU64(17)}, proof));
}

TEST(PlonkTest, ProofsAreRerandomized)
{
    PlonkExponentiation<Fr> circ(4);
    Rng rng(91);
    auto keys = PlonkB::setup(circ.builder, rng);
    Fr x = Fr::fromU64(7);
    Fr y = x.pow(BigInt<1>(4));
    auto p1 = PlonkB::prove(keys.pk, circ.assign(x), {y}, rng);
    auto p2 = PlonkB::prove(keys.pk, circ.assign(x), {y}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {y}, p1));
    EXPECT_TRUE(PlonkB::verify(keys.vk, {y}, p2));
    EXPECT_FALSE(p1.a == p2.a); // blinding is live
}

TEST(PlonkTest, WorksOnBls381)
{
    using FrB = Bls381::Fr;
    using PlonkBls = Plonk<Bls381>;
    PlonkExponentiation<FrB> circ(4);
    Rng rng(92);
    auto keys = PlonkBls::setup(circ.builder, rng);
    FrB x = FrB::fromU64(3);
    FrB y = x.pow(BigInt<1>(4));
    auto proof = PlonkBls::prove(keys.pk, circ.assign(x), {y}, rng);
    EXPECT_TRUE(PlonkBls::verify(keys.vk, {y}, proof));
    EXPECT_FALSE(PlonkBls::verify(keys.vk, {y + FrB::one()}, proof));
}

class PlonkSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PlonkSizeSweep, CompletenessAcrossSizes)
{
    const std::size_t e = GetParam();
    PlonkExponentiation<Fr> circ(e);
    Rng rng(300 + (u64)e);
    auto keys = PlonkB::setup(circ.builder, rng);
    Fr x = Fr::random(rng);
    Fr y = x.pow(BigInt<1>((u64)e));
    auto values = circ.assign(x);
    ASSERT_TRUE(PlonkB::satisfied(keys.pk, values, {y}));
    auto proof = PlonkB::prove(keys.pk, values, {y}, rng);
    EXPECT_TRUE(PlonkB::verify(keys.vk, {y}, proof));
    EXPECT_FALSE(PlonkB::verify(keys.vk, {y + Fr::one()}, proof));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlonkSizeSweep,
                         ::testing::Values(2, 3, 5, 9, 33, 128));

} // namespace
} // namespace zkp::snark
