/**
 * @file
 * Circuit-builder, R1CS and witness-calculator tests.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ff/params.h"
#include "r1cs/circuits.h"

namespace zkp::r1cs {
namespace {

using Fr = ff::bn254::Fr;
using FrBls = ff::bls381::Fr;

TEST(LinearCombination, NormalizeMergesAndDrops)
{
    LinearCombination<Fr> lc;
    lc.terms = {{3, Fr::fromU64(2)},
                {1, Fr::fromU64(5)},
                {3, Fr::fromU64(7)},
                {2, Fr::zero()}};
    lc.normalize();
    ASSERT_EQ(lc.terms.size(), 2u);
    EXPECT_EQ(lc.terms[0].first, 1u);
    EXPECT_EQ(lc.terms[0].second, Fr::fromU64(5));
    EXPECT_EQ(lc.terms[1].first, 3u);
    EXPECT_EQ(lc.terms[1].second, Fr::fromU64(9));

    // Cancellation to zero.
    LinearCombination<Fr> a(1, Fr::fromU64(4));
    auto diff = a - a;
    EXPECT_TRUE(diff.isZero());
}

TEST(LinearCombination, ArithmeticAndEvaluate)
{
    std::vector<Fr> z{Fr::one(), Fr::fromU64(10), Fr::fromU64(20)};
    LinearCombination<Fr> a(1, Fr::fromU64(3)); // 3*z1 = 30
    LinearCombination<Fr> b(2, Fr::fromU64(2)); // 2*z2 = 40
    EXPECT_EQ(a.evaluate(z), Fr::fromU64(30));
    EXPECT_EQ((a + b).evaluate(z), Fr::fromU64(70));
    EXPECT_EQ((a - b).evaluate(z), Fr::fromU64(30) - Fr::fromU64(40));
    EXPECT_EQ(a.scaled(Fr::fromU64(5)).evaluate(z), Fr::fromU64(150));
}

TEST(CircuitBuilder, ExponentiationConstraintCount)
{
    // The paper's circuit: e constraints for exponent e.
    for (std::size_t e : {1u, 2u, 8u, 100u}) {
        ExponentiationCircuit<Fr> circ(e);
        EXPECT_EQ(circ.builder.numConstraints(), e) << "e=" << e;
        EXPECT_EQ(circ.builder.numPublic(), 1u);
        EXPECT_EQ(circ.builder.numPrivate(), 1u);
    }
}

TEST(CircuitBuilder, ExponentiationSatisfied)
{
    Rng rng(51);
    const std::size_t e = 17;
    ExponentiationCircuit<Fr> circ(e);
    auto cs = circ.builder.compile();
    WitnessCalculator<Fr> calc(circ.builder.witnessProgram());

    Fr x = Fr::random(rng);
    Fr y = circ.evaluate(x);
    auto z = calc.compute({y}, {x});
    EXPECT_EQ(z.size(), cs.numVars());
    EXPECT_TRUE(cs.isSatisfied(z));

    // Wrong public input must not satisfy.
    auto z_bad = calc.compute({y + Fr::one()}, {x});
    EXPECT_FALSE(cs.isSatisfied(z_bad));
}

TEST(CircuitBuilder, InverseGate)
{
    CircuitBuilder<Fr> b;
    auto pub = b.publicInput();
    auto x = b.privateInput();
    auto inv = b.inverse(x);
    b.assertEqual(inv, pub);
    auto cs = b.compile();
    WitnessCalculator<Fr> calc(b.witnessProgram());

    Fr v = Fr::fromU64(42);
    auto z = calc.compute({v.inverse()}, {v});
    EXPECT_TRUE(cs.isSatisfied(z));
}

TEST(CircuitBuilder, MaterializeAndAssertBoolean)
{
    CircuitBuilder<Fr> b;
    auto pub = b.publicInput();
    auto x = b.privateInput();
    auto w = b.materialize(x + pub);
    b.assertBoolean(w);
    auto cs = b.compile();
    WitnessCalculator<Fr> calc(b.witnessProgram());
    auto z_ok = calc.compute({Fr::one()}, {Fr::zero()});
    EXPECT_TRUE(cs.isSatisfied(z_ok));
    auto z_bad = calc.compute({Fr::one()}, {Fr::one()});
    EXPECT_FALSE(cs.isSatisfied(z_bad));
}

TEST(WitnessCalculator, ThreadedMatchesSerial)
{
    Rng rng(52);
    ExponentiationCircuit<Fr> circ(64);
    WitnessCalculator<Fr> calc(circ.builder.witnessProgram());
    Fr x = Fr::random(rng);
    Fr y = circ.evaluate(x);
    EXPECT_EQ(calc.compute({y}, {x}, 1), calc.compute({y}, {x}, 4));
}

TEST(WitnessCalculator, PublicSlice)
{
    ExponentiationCircuit<Fr> circ(5);
    WitnessCalculator<Fr> calc(circ.builder.witnessProgram());
    Fr x = Fr::fromU64(3);
    Fr y = circ.evaluate(x);
    auto z = calc.compute({y}, {x});
    auto pub = calc.publicSlice(z);
    ASSERT_EQ(pub.size(), 1u);
    EXPECT_EQ(pub[0], y);
    EXPECT_EQ(y, Fr::fromU64(243));
}

TEST(Mimc, NativeMatchesGadget)
{
    Rng rng(53);
    Fr l = Fr::random(rng);
    Fr r = Fr::random(rng);

    CircuitBuilder<Fr> b;
    auto pub = b.publicInput();
    auto lw = b.privateInput();
    auto rw = b.privateInput();
    auto h = Mimc<Fr>::hash2Gadget(b, lw, rw);
    b.assertEqual(h, pub);
    auto cs = b.compile();
    WitnessCalculator<Fr> calc(b.witnessProgram());

    auto z = calc.compute({Mimc<Fr>::hash2(l, r)}, {l, r});
    EXPECT_TRUE(cs.isSatisfied(z));
    auto z_bad = calc.compute({Mimc<Fr>::hash2(l, r) + Fr::one()}, {l, r});
    EXPECT_FALSE(cs.isSatisfied(z_bad));
}

TEST(Mimc, BasicHashProperties)
{
    // Deterministic, argument-order sensitive, spread out.
    Fr a = Fr::fromU64(1), b = Fr::fromU64(2);
    EXPECT_EQ(Mimc<Fr>::hash2(a, b), Mimc<Fr>::hash2(a, b));
    EXPECT_NE(Mimc<Fr>::hash2(a, b), Mimc<Fr>::hash2(b, a));
    EXPECT_NE(Mimc<Fr>::hash2(a, b), Mimc<Fr>::hash2(a, a));
    // Also works over the BLS scalar field.
    EXPECT_NE(Mimc<FrBls>::hash2(FrBls::fromU64(1), FrBls::fromU64(2)),
              FrBls::zero());
}

TEST(Gadgets, BitDecomposeInRange)
{
    CircuitBuilder<Fr> b;
    auto pub = b.publicInput();
    auto x = b.privateInput();
    b.assertEqual(x, pub); // bind for the test
    gadgets::bitDecompose(b, x, 8);
    auto cs = b.compile();
    WitnessCalculator<Fr> calc(b.witnessProgram());

    for (u64 v : {0ULL, 1ULL, 200ULL, 255ULL}) {
        auto z = calc.compute({Fr::fromU64(v)}, {Fr::fromU64(v)});
        EXPECT_TRUE(cs.isSatisfied(z)) << v;
    }
    for (u64 v : {256ULL, 1000ULL}) {
        auto z = calc.compute({Fr::fromU64(v)}, {Fr::fromU64(v)});
        EXPECT_FALSE(cs.isSatisfied(z)) << v;
    }
}

TEST(Gadgets, MerkleMembership)
{
    Rng rng(54);
    const std::size_t depth = 4;
    gadgets::MerkleCircuit<Fr> circ(depth);
    auto cs = circ.builder.compile();
    WitnessCalculator<Fr> calc(circ.builder.witnessProgram());

    Fr leaf = Fr::random(rng);
    std::vector<Fr> siblings;
    std::vector<bool> dirs;
    for (std::size_t i = 0; i < depth; ++i) {
        siblings.push_back(Fr::random(rng));
        dirs.push_back(rng.next() & 1);
    }
    Fr root = gadgets::MerkleCircuit<Fr>::computeRoot(leaf, siblings, dirs);
    auto priv =
        gadgets::MerkleCircuit<Fr>::privateInputs(leaf, siblings, dirs);

    EXPECT_TRUE(cs.isSatisfied(calc.compute({root}, priv)));
    EXPECT_FALSE(
        cs.isSatisfied(calc.compute({root + Fr::one()}, priv)));

    // A flipped direction bit changes the root.
    auto dirs_bad = dirs;
    dirs_bad[0] = !dirs_bad[0];
    auto priv_bad =
        gadgets::MerkleCircuit<Fr>::privateInputs(leaf, siblings, dirs_bad);
    EXPECT_FALSE(cs.isSatisfied(calc.compute({root}, priv_bad)));
}

TEST(Gadgets, RangeCircuit)
{
    gadgets::RangeCircuit<Fr> circ(16);
    auto cs = circ.builder.compile();
    WitnessCalculator<Fr> calc(circ.builder.witnessProgram());

    Fr x = Fr::fromU64(12345); // < 2^16
    auto z = calc.compute({gadgets::RangeCircuit<Fr>::commitment(x)}, {x});
    EXPECT_TRUE(cs.isSatisfied(z));

    Fr big = Fr::fromU64(1 << 20);
    auto z_bad = calc.compute(
        {gadgets::RangeCircuit<Fr>::commitment(big)}, {big});
    EXPECT_FALSE(cs.isSatisfied(z_bad));
}

TEST(R1cs, Accessors)
{
    ExponentiationCircuit<Fr> circ(10);
    auto cs = circ.builder.compile();
    EXPECT_EQ(cs.numConstraints(), 10u);
    EXPECT_EQ(cs.numPublic(), 1u);
    EXPECT_EQ(cs.numVars(), circ.builder.numVars());
    EXPECT_GT(cs.numNonZero(), 0u);
}

} // namespace
} // namespace zkp::r1cs
