/**
 * @file
 * Memory observability tests (src/obs/memprof.h): deterministic
 * allocation counting through the operator new/delete interposition,
 * span-site attribution, RSS/peak-RSS readers, the background
 * sampler, tracked-owner accounting, stage deltas, and the
 * tracked-vs-allocator reconciliation on a real 2^12 proving
 * pipeline.
 *
 * Under sanitizer builds the interposition shim is compiled out
 * (available() == false) and the allocation-dependent tests skip —
 * the refusal path itself is asserted instead. The alloc-storm test
 * runs either way and is in the TSan target set to race the readers
 * against writers.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "obs/memprof.h"
#include "poly/domain.h"
#include "snark/curve.h"

namespace memprof = zkp::obs::memprof;
using zkp::obs::memprof::u64;

namespace {

/** Touch every page so the bytes become resident. */
void
touchPages(char* p, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4096)
        p[i] = (char)(i & 0xff);
    p[n - 1] = 1;
}

} // namespace

// Runs first (gtest declaration order) and turns tracking on for the
// rest of the suite when the build supports it.
TEST(Memprof, AvailabilityAndToggle)
{
    if (!memprof::available()) {
        // Sanitizer build: enabling must be refused, not crash, and
        // the reason must be human-readable.
        EXPECT_FALSE(memprof::setTracking(true));
        EXPECT_FALSE(memprof::setTracking(true)); // idempotent refusal
        EXPECT_FALSE(memprof::tracking());
        EXPECT_STRNE("", memprof::unavailableReason());
        return;
    }
    EXPECT_STREQ("", memprof::unavailableReason());
    EXPECT_TRUE(memprof::setTracking(true));
    EXPECT_TRUE(memprof::tracking());
}

TEST(Memprof, DeterministicThreadCounting)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    constexpr std::size_t kSizes[] = {64, 256, 1024, 4096, 65536};
    constexpr std::size_t kCount = std::size(kSizes);
    std::array<void*, kCount> ptrs{};

    const auto before = memprof::threadStats();
    std::size_t requested = 0;
    for (std::size_t i = 0; i < kCount; ++i) {
        ptrs[i] = ::operator new(kSizes[i]);
        requested += kSizes[i];
    }
    const auto mid = memprof::threadStats();

    // Exactly our allocations happened on this thread between the two
    // snapshots; bytes are usable-size so >= requested with bounded
    // allocator slack.
    EXPECT_EQ(mid.allocCount - before.allocCount, kCount);
    EXPECT_GE(mid.allocBytes - before.allocBytes, requested);
    EXPECT_LE(mid.allocBytes - before.allocBytes,
              2 * requested + kCount * 64);
    EXPECT_EQ(mid.freeCount, before.freeCount);

    for (void* p : ptrs)
        ::operator delete(p);
    const auto after = memprof::threadStats();

    // Usable-size on both sides makes live bytes return exactly.
    EXPECT_EQ(after.freeCount - mid.freeCount, kCount);
    EXPECT_EQ(after.freeBytes - mid.freeBytes,
              mid.allocBytes - before.allocBytes);
    EXPECT_EQ(after.liveBytes(), before.liveBytes());
}

TEST(Memprof, SizeHistogramBucketsBySizeClass)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    const auto before = memprof::sizeHistogram();
    void* p = ::operator new(std::size_t(1) << 20);
    const auto after = memprof::sizeHistogram();
    ::operator delete(p);

    // usable(1 MiB) lands in the 2^20 or (with allocator header
    // rounding) 2^21 class.
    const u64 grew = (after[20] - before[20]) + (after[21] - before[21]);
    EXPECT_GE(grew, 1u);
}

TEST(Memprof, SpanSiteAttribution)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    static const char* const kSite = "test.site.alpha";
    memprof::pushSite(kSite);
    void* p = ::operator new(std::size_t(64) << 10);
    memprof::popSite();
    ::operator delete(p);

    bool found = false;
    for (const auto& s : memprof::siteSnapshot()) {
        if (s.name && std::strcmp(s.name, "test.site.alpha") == 0) {
            found = true;
            EXPECT_GE(s.allocBytes, std::size_t(64) << 10);
            EXPECT_GE(s.allocCount, 1u);
        }
    }
    EXPECT_TRUE(found);
}

// Regression: allocations made with no span active must not sit in an
// unclaimed site-table slot, where the next new span name to claim the
// slot would inherit them. They belong to the "(no span)" bucket, and
// a freshly claimed site must start from zero.
TEST(Memprof, NoSpanBytesDoNotLeakIntoNextClaimedSite)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    auto siteBytes = [](const std::vector<memprof::SiteStat>& sites,
                        const char* name) -> u64 {
        for (const auto& s : sites)
            if (s.name && std::strcmp(s.name, name) == 0)
                return s.allocBytes;
        return 0;
    };

    const auto before = memprof::siteSnapshot();

    // 1 MiB with no span active, then a small allocation under a
    // site name this process has never seen.
    constexpr std::size_t kNoSpan = std::size_t(1) << 20;
    void* orphan = ::operator new(kNoSpan);
    static const char* const kFresh = "test.site.fresh.claim";
    memprof::pushSite(kFresh);
    void* p = ::operator new(std::size_t(4) << 10);
    memprof::popSite();

    const auto after = memprof::siteSnapshot();
    ::operator delete(p);
    ::operator delete(orphan);

    // The fresh site saw only its own 4 KiB (allocator slack < 64 KiB),
    // not the orphaned megabyte.
    const u64 fresh =
        siteBytes(after, "test.site.fresh.claim") -
        siteBytes(before, "test.site.fresh.claim");
    EXPECT_GE(fresh, std::size_t(4) << 10);
    EXPECT_LT(fresh, std::size_t(64) << 10);
    // The orphan landed in the "(no span)" bucket instead.
    EXPECT_GE(siteBytes(after, "(no span)") -
                  siteBytes(before, "(no span)"),
              kNoSpan);
}

// With every allocation routed to a named site, "(no span)", or the
// overflow bucket, the site snapshot must reconcile with the global
// allocator counters.
TEST(Memprof, SiteBytesSumToAllocatorTotals)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    const u64 before = memprof::totals().allocBytes;
    u64 sum = 0;
    for (const auto& s : memprof::siteSnapshot())
        sum += s.allocBytes;
    const u64 after = memprof::totals().allocBytes;

    // Counter order in recordAlloc (allocBytes first, then the site)
    // bounds the sum by the totals read on either side of it; the
    // slack covers racing allocations on pool threads.
    EXPECT_LE(sum, after);
    EXPECT_GE(sum + (std::size_t(64) << 10), before);
}

TEST(Memprof, RssReadersAndPeakMonotonicity)
{
    const u64 rss0 = memprof::rssBytes();
    const u64 peak0 = memprof::peakRssBytes();
    ASSERT_GT(rss0, 0u);
    ASSERT_GT(peak0, 0u);

    // Touch 32 MiB: current RSS must grow by most of it while the
    // block is held, and the high-water mark can only go up.
    constexpr std::size_t kBytes = std::size_t(32) << 20;
    std::vector<char> block(kBytes);
    touchPages(block.data(), kBytes);

    const u64 rss1 = memprof::rssBytes();
    const u64 peak1 = memprof::peakRssBytes();
    EXPECT_GE(rss1, rss0 + (std::size_t(24) << 20));
    EXPECT_GE(peak1, peak0);
    // VmHWM >= RSS modulo the instant between the two /proc reads.
    EXPECT_GE(peak1 + (std::size_t(1) << 20), rss1);

    block.clear();
    block.shrink_to_fit();
    EXPECT_GE(memprof::peakRssBytes(), peak1); // never decreases
}

TEST(Memprof, SmapsRollupSplitsResidentSet)
{
    const auto roll = memprof::smapsRollup();
    if (!roll.ok)
        GTEST_SKIP() << "smaps_rollup unavailable";
    EXPECT_GT(roll.anonBytes, 0u);
    const u64 rss = memprof::rssBytes();
    // anon + file should roughly reassemble statm RSS (THP and timing
    // skew allowed for).
    EXPECT_GE(roll.anonBytes + roll.fileBytes + (std::size_t(8) << 20),
              rss / 2);
}

TEST(Memprof, SamplerRecordsMaxima)
{
    memprof::startSampler(5);
    constexpr std::size_t kBytes = std::size_t(8) << 20;
    std::vector<char> block(kBytes);
    touchPages(block.data(), kBytes);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));

    auto stats = memprof::samplerStats();
    EXPECT_TRUE(stats.running);
    EXPECT_GE(stats.samples, 1u);
    EXPECT_GT(stats.maxRssBytes, 0u);

    memprof::stopSampler();
    stats = memprof::samplerStats();
    EXPECT_FALSE(stats.running);
    memprof::startSampler(5); // idempotent restart then clean stop
    memprof::stopSampler();
}

TEST(Memprof, TrackedOwnerAccounting)
{
    const u64 base = memprof::trackedTotalBytes();

    memprof::trackedAdd("test.owner.x", 1234);
    EXPECT_EQ(memprof::trackedTotalBytes(), base + 1234);
    bool found = false;
    for (const auto& [name, bytes] : memprof::trackedSnapshot())
        if (name == "test.owner.x") {
            found = true;
            EXPECT_EQ(bytes, 1234u);
        }
    EXPECT_TRUE(found);

    // Withdrawing more than the account holds clamps at zero rather
    // than corrupting the total.
    memprof::trackedAdd("test.owner.x", -999999);
    EXPECT_EQ(memprof::trackedTotalBytes(), base);

    {
        memprof::TrackedBytes t;
        t.set("test.owner.raii", 4096);
        EXPECT_EQ(memprof::trackedTotalBytes(), base + 4096);
        memprof::TrackedBytes moved(std::move(t));
        EXPECT_EQ(memprof::trackedTotalBytes(), base + 4096);
        moved.set("test.owner.raii", 8192); // replaces, not adds
        EXPECT_EQ(memprof::trackedTotalBytes(), base + 8192);
    }
    EXPECT_EQ(memprof::trackedTotalBytes(), base); // RAII withdrew
}

TEST(Memprof, StageDeltaMeasuresRegion)
{
    const auto before = memprof::snapshot();

    void* kept = ::operator new(std::size_t(256) << 10);
    void* temp = ::operator new(std::size_t(128) << 10);
    ::operator delete(temp);

    auto delta = memprof::stageDelta(before, 3);
    EXPECT_GT(delta.rssBytes, 0u);
    EXPECT_GE(delta.peakRssBytes, before.peakRssBytes);
    EXPECT_LE(delta.topSites.size(), 3u);
    if (memprof::tracking()) {
        EXPECT_TRUE(delta.tracked);
        EXPECT_GE(delta.allocBytes, std::size_t(384) << 10);
        EXPECT_GE(delta.allocCount, 2u);
        EXPECT_GE(delta.liveDelta, (std::int64_t)(std::size_t(256) << 10));
        EXPECT_LT(delta.liveDelta, (std::int64_t)(std::size_t(320) << 10));
    } else {
        EXPECT_FALSE(delta.tracked);
    }
    ::operator delete(kept);
}

/**
 * The acceptance reconciliation: run setup+prove of a real 2^12
 * pipeline and check that the explicitly tracked owners (proving key,
 * twiddles, ...) explain a sane fraction of allocator-observed live
 * bytes. Tracked accounts count payload bytes (counts x sizeof), the
 * allocator counts usable sizes plus container slack plus everything
 * the owners do NOT model (witness vectors, R1CS storage), so the
 * documented bound is: 5% <= tracked/live <= 105%.
 */
TEST(Memprof, TrackedVsAllocatorReconciliationOnProve)
{
    if (!memprof::available())
        GTEST_SKIP() << memprof::unavailableReason();
    ASSERT_TRUE(memprof::setTracking(true));

    zkp::core::StageRunner<zkp::snark::Bn254> runner(std::size_t(1)
                                                     << 12);
    auto run = runner.run(zkp::core::Stage::Proving, 2);

    // The per-stage mem object StageRunner now fills (schema /3).
    EXPECT_TRUE(run.mem.tracked);
    EXPECT_GT(run.mem.rssBytes, 0u);
    EXPECT_GT(run.mem.allocBytes, 0u);
    EXPECT_GT(run.mem.allocCount, 0u);

    // The proving key is held by the runner, so its account is live
    // here. Twiddle caches are owned by prove's transient Domains and
    // correctly withdrawn when they die — their lifecycle is covered
    // by TwiddleAccountFollowsDomainLifetime below.
    const auto owners = memprof::trackedSnapshot();
    auto has = [&](const char* name) {
        for (const auto& [n, b] : owners)
            if (n == name && b > 0)
                return true;
        return false;
    };
    EXPECT_TRUE(has("snark.proving_key"));

    const double tracked = (double)memprof::trackedTotalBytes();
    const double live = (double)memprof::totals().liveBytes();
    ASSERT_GT(live, 0.0);
    ASSERT_GT(tracked, 0.0);
    const double ratio = tracked / live;
    EXPECT_GE(ratio, 0.05) << "tracked=" << tracked << " live=" << live;
    EXPECT_LE(ratio, 1.05) << "tracked=" << tracked << " live=" << live;
}

/** Transient owners withdraw their account when they die: a Domain's
 *  twiddle cache registers "ntt.twiddles" on first use and the RAII
 *  account returns to baseline with the last Domain sharing it. */
TEST(Memprof, TwiddleAccountFollowsDomainLifetime)
{
    auto ownerBytes = [](const char* name) -> u64 {
        for (const auto& [n, b] : memprof::trackedSnapshot())
            if (n == name)
                return b;
        return 0;
    };
    using Fr = zkp::snark::Bn254::Fr;

    const u64 base = ownerBytes("ntt.twiddles");
    {
        zkp::poly::Domain<Fr> dom(1 << 10);
        zkp::Rng rng(7);
        std::vector<Fr> v(1 << 10);
        for (auto& x : v)
            x = Fr::random(rng);
        dom.ntt(v, 1); // builds the twiddle cache
        EXPECT_GT(ownerBytes("ntt.twiddles"), base);
    }
    EXPECT_EQ(ownerBytes("ntt.twiddles"), base);
}

/**
 * Readers vs writers under load (TSan target): worker threads churn
 * allocations inside span sites while the main thread scrapes every
 * snapshot API. Asserts liveness/shape only — the interesting
 * property is the absence of races and crashes.
 */
TEST(Memprof, AllocStormVsScraper)
{
    if (memprof::available())
        ASSERT_TRUE(memprof::setTracking(true));

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&stop, t] {
            static const char* const kSites[] = {
                "storm.a", "storm.b", "storm.c", "storm.d"};
            std::size_t sz = 32 + 8 * (std::size_t)t;
            while (!stop.load(std::memory_order_relaxed)) {
                memprof::pushSite(kSites[t]);
                void* p = ::operator new(sz);
                memprof::popSite();
                ::operator delete(p);
                sz = sz < 4096 ? sz * 2 : 32;
                memprof::trackedAdd("storm.owner", 64);
                memprof::trackedAdd("storm.owner", -64);
            }
        });

    memprof::startSampler(2);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(100);
    u64 scrapes = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        auto snap = memprof::snapshot();
        (void)memprof::totals();
        (void)memprof::threadStats();
        (void)memprof::sizeHistogram();
        (void)memprof::siteSnapshot();
        (void)memprof::trackedSnapshot();
        (void)memprof::samplerStats();
        (void)memprof::stageDelta(snap, 2);
        ++scrapes;
    }
    stop.store(true);
    for (auto& w : workers)
        w.join();
    memprof::stopSampler();
    EXPECT_GT(scrapes, 0u);

    if (memprof::available()) {
        // Every storm allocation was freed: the workers' net live
        // contribution is zero, and totals() kept alloc >= free.
        const auto t = memprof::totals();
        EXPECT_GE(t.allocCount, t.freeCount);
    }
}
