/**
 * @file
 * Serialization, batch verification, and parameterized property
 * sweeps (TEST_P) over circuit sizes for the snark layer.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "r1cs/circuits.h"
#include "snark/serialize.h"

namespace zkp::snark {
namespace {

using Fr = Bn254::Fr;
using Scheme = Groth16<Bn254>;

/** One compiled pipeline shared by the tests in this file. */
struct Fixture
{
    r1cs::ExponentiationCircuit<Fr> circ;
    r1cs::R1cs<Fr> cs;
    r1cs::WitnessCalculator<Fr> calc;
    Scheme::Keypair keys;

    explicit Fixture(std::size_t e)
        : circ(e), cs(circ.builder.compile()),
          calc(circ.builder.witnessProgram()), keys([&] {
              Rng rng(5);
              return Scheme::setup(cs, rng);
          }())
    {}

    Scheme::Proof
    proveFor(const Fr& x, Rng& rng) const
    {
        return Scheme::prove(keys.pk, cs,
                             calc.compute({circ.evaluate(x)}, {x}), rng);
    }
};

const Fixture&
fixture()
{
    static const Fixture f(16);
    return f;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

TEST(Serialize, ProofRoundTrip)
{
    Rng rng(61);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);

    auto bytes = serializeProof<Bn254>(proof);
    // 2 compressed G1 (1 + 32) + 1 compressed G2 (1 + 2*32).
    EXPECT_EQ(bytes.size(), 2 * 33 + 65u);

    auto back = deserializeProof<Bn254>(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->a == proof.a);
    EXPECT_TRUE(back->b == proof.b);
    EXPECT_TRUE(back->c == proof.c);
    EXPECT_TRUE(
        Scheme::verify(fixture().keys.vk, {fixture().circ.evaluate(x)},
                       *back));
}

TEST(Serialize, FramedProofRoundTrip)
{
    Rng rng(67);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);

    auto framed = serializeProofFramed<Bn254>(proof);
    // "ZKP" magic + schema byte ahead of the legacy layout.
    EXPECT_EQ(framed.size(), 4 + 2 * 33 + 65u);
    EXPECT_EQ(framed[0], 'Z');
    EXPECT_EQ(framed[3], kSchemaVersion);

    auto back = deserializeProofAny<Bn254>(framed);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->a == proof.a);
    EXPECT_TRUE(back->b == proof.b);
    EXPECT_TRUE(back->c == proof.c);
}

TEST(Serialize, LegacyProofStillAccepted)
{
    // Old-tag payloads (no header) must keep deserializing: proofs
    // persisted before the versioned header predate it.
    Rng rng(68);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);

    auto legacy = serializeProof<Bn254>(proof);
    auto back = deserializeProofAny<Bn254>(legacy);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->a == proof.a);
    EXPECT_TRUE(back->b == proof.b);
    EXPECT_TRUE(back->c == proof.c);
}

TEST(Serialize, UnknownSchemaVersionRejected)
{
    Rng rng(69);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);

    auto framed = serializeProofFramed<Bn254>(proof);
    framed[3] = 99; // a future schema this build does not know
    EXPECT_FALSE(deserializeProofAny<Bn254>(framed).has_value());
    framed[3] = 0; // version 0 was never issued
    EXPECT_FALSE(deserializeProofAny<Bn254>(framed).has_value());
}

TEST(Serialize, TruncatedFramedProofRejected)
{
    Rng rng(70);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);

    auto framed = serializeProofFramed<Bn254>(proof);
    for (std::size_t cut : {std::size_t(1), std::size_t(3),
                            std::size_t(4), framed.size() - 1}) {
        std::vector<std::uint8_t> prefix(framed.begin(),
                                         framed.begin() + cut);
        EXPECT_FALSE(deserializeProofAny<Bn254>(prefix).has_value())
            << "accepted a " << cut << "-byte prefix";
    }
}

TEST(Serialize, ProofRoundTripBls)
{
    using SchemeB = Groth16<Bls381>;
    using FrB = Bls381::Fr;
    r1cs::ExponentiationCircuit<FrB> circ(8);
    auto cs = circ.builder.compile();
    r1cs::WitnessCalculator<FrB> calc(circ.builder.witnessProgram());
    Rng rng(62);
    auto keys = SchemeB::setup(cs, rng);
    FrB x = FrB::random(rng);
    auto proof = SchemeB::prove(keys.pk, cs,
                                calc.compute({circ.evaluate(x)}, {x}),
                                rng);
    auto back =
        deserializeProof<Bls381>(serializeProof<Bls381>(proof));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(SchemeB::verify(keys.vk, {circ.evaluate(x)}, *back));
}

TEST(Serialize, RejectsCorruptProof)
{
    Rng rng(63);
    Fr x = Fr::random(rng);
    auto bytes = serializeProof<Bn254>(fixture().proveFor(x, rng));

    // Truncation.
    auto trunc = bytes;
    trunc.pop_back();
    EXPECT_FALSE(deserializeProof<Bn254>(trunc).has_value());

    // Trailing garbage.
    auto extra = bytes;
    extra.push_back(0);
    EXPECT_FALSE(deserializeProof<Bn254>(extra).has_value());

    // Invalid tag.
    auto badtag = bytes;
    badtag[0] = 9;
    EXPECT_FALSE(deserializeProof<Bn254>(badtag).has_value());

    // Non-canonical field element: set x to the modulus.
    auto badfield = bytes;
    auto p = Bn254::G1::Field::kModulus;
    for (std::size_t i = 0; i < 4; ++i)
        for (int b = 0; b < 8; ++b)
            badfield[1 + i * 8 + b] =
                (std::uint8_t)(p.limbs[i] >> (8 * b));
    EXPECT_FALSE(deserializeProof<Bn254>(badfield).has_value());
}

TEST(Serialize, RejectsOffCurveX)
{
    // Craft a compressed point whose x has no matching y.
    using Fq = Bn254::G1::Field;
    Fq x = Fq::fromU64(5); // 5^3 + 3 = 128; is it a square mod p?
    Fq y2 = x.squared() * x + Bn254::G1::b();
    Fq dummy;
    if (y2.sqrt(dummy)) {
        // pick another x value that fails
        x = Fq::fromU64(4); // 64 + 3 = 67
        y2 = x.squared() * x + Bn254::G1::b();
    }
    if (!y2.sqrt(dummy)) {
        ByteWriter w;
        w.putU8(kTagEvenY);
        w.putField(x);
        ByteReader r(w.bytes());
        Bn254::G1::Affine out;
        EXPECT_FALSE(readG1<Bn254::G1>(r, out));
    }
}

TEST(Serialize, Fp2SqrtRoundTrip)
{
    using Fq2 = Bn254::G2::Field;
    Rng rng(640);
    for (int i = 0; i < 12; ++i) {
        Fq2 a = Fq2::random(rng);
        Fq2 sq = a.squared();
        Fq2 root;
        ASSERT_TRUE(sq.sqrt(root));
        EXPECT_TRUE(root == a || root == -a);
    }
    // Pure-Fq and pure-u elements.
    Fq2 real{Bn254::G1::Field::fromU64(9), Bn254::G1::Field::zero()};
    Fq2 root;
    ASSERT_TRUE(real.sqrt(root));
    EXPECT_EQ(root.squared(), real);
    // A known non-residue has no root: a random non-square.
    int rejected = 0;
    for (int i = 0; i < 8; ++i) {
        Fq2 a = Fq2::random(rng);
        Fq2 r2;
        if (!a.sqrt(r2))
            ++rejected;
        else
            EXPECT_EQ(r2.squared(), a);
    }
    EXPECT_GT(rejected, 0); // ~half of elements are non-residues
}

TEST(Serialize, RejectsNonSubgroupG2Point)
{
    // Find an on-curve G2 point outside the order-r subgroup (the
    // BN254 twist has a large cofactor, so a random curve point is
    // essentially never in the subgroup) and check the reader rejects
    // its encoding.
    using G2 = Bn254::G2;
    using Fq2 = G2::Field;
    using Fq = Bn254::G1::Field;
    Fq2 x{Fq::fromU64(1), Fq::fromU64(0)};
    Fq2 y;
    while (!(x.squared() * x + G2::b()).sqrt(y))
        x.c0 += Fq::one();
    G2::Affine p(x, y);
    ASSERT_TRUE(p.isOnCurve(G2::b()));
    ASSERT_FALSE(inSubgroup<G2>(p)); // cofactor is nontrivial

    ByteWriter w;
    writeG2<G2>(w, p);
    ByteReader r(w.bytes());
    G2::Affine out;
    EXPECT_FALSE(readG2<G2>(r, out));
}

TEST(Serialize, InfinityPoints)
{
    ByteWriter w;
    writeG1<Bn254::G1>(w, Bn254::G1::Affine()); // infinity
    writeG2<Bn254::G2>(w, Bn254::G2::Affine());
    ByteReader r(w.bytes());
    Bn254::G1::Affine p1;
    Bn254::G2::Affine p2;
    EXPECT_TRUE(readG1<Bn254::G1>(r, p1));
    EXPECT_TRUE(readG2<Bn254::G2>(r, p2));
    EXPECT_TRUE(p1.infinity);
    EXPECT_TRUE(p2.infinity);
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, G1CompressionPreservesParity)
{
    Rng rng(64);
    typename Bn254::G1::Jacobian g{Bn254::G1::generator()};
    for (u64 k = 1; k <= 12; ++k) {
        auto p = g.mulScalar(k * 7919).toAffine();
        ByteWriter w;
        writeG1<Bn254::G1>(w, p);
        ByteReader r(w.bytes());
        Bn254::G1::Affine back;
        ASSERT_TRUE(readG1<Bn254::G1>(r, back));
        EXPECT_TRUE(back == p) << k;
    }
}

TEST(Serialize, VerifyingKeyRoundTrip)
{
    auto bytes = serializeVerifyingKey<Bn254>(fixture().keys.vk);
    auto back = deserializeVerifyingKey<Bn254>(bytes);
    ASSERT_TRUE(back.has_value());

    // The restored key verifies a fresh proof.
    Rng rng(65);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);
    EXPECT_TRUE(
        Scheme::verify(*back, {fixture().circ.evaluate(x)}, proof));

    // Truncations at every byte boundary are rejected.
    for (std::size_t cut : {std::size_t(0), bytes.size() / 2,
                            bytes.size() - 1}) {
        std::vector<std::uint8_t> t(bytes.begin(),
                                    bytes.begin() + cut);
        EXPECT_FALSE(deserializeVerifyingKey<Bn254>(t).has_value());
    }
}

// ---------------------------------------------------------------------
// Batch verification
// ---------------------------------------------------------------------

TEST(BatchVerify, AcceptsManyValidProofs)
{
    Rng rng(66);
    std::vector<std::vector<Fr>> pubs;
    std::vector<Scheme::Proof> proofs;
    for (int i = 0; i < 5; ++i) {
        Fr x = Fr::random(rng);
        pubs.push_back({fixture().circ.evaluate(x)});
        proofs.push_back(fixture().proveFor(x, rng));
    }
    EXPECT_TRUE(
        Scheme::verifyBatch(fixture().keys.vk, pubs, proofs, rng));
}

TEST(BatchVerify, RejectsOneBadProofAmongMany)
{
    Rng rng(67);
    std::vector<std::vector<Fr>> pubs;
    std::vector<Scheme::Proof> proofs;
    for (int i = 0; i < 4; ++i) {
        Fr x = Fr::random(rng);
        pubs.push_back({fixture().circ.evaluate(x)});
        proofs.push_back(fixture().proveFor(x, rng));
    }
    // Corrupt one public input.
    pubs[2][0] += Fr::one();
    EXPECT_FALSE(
        Scheme::verifyBatch(fixture().keys.vk, pubs, proofs, rng));
}

TEST(BatchVerify, EmptyBatchIsVacuouslyTrue)
{
    Rng rng(68);
    EXPECT_TRUE(Scheme::verifyBatch(fixture().keys.vk, {}, {}, rng));
}

TEST(BatchVerify, SingleProofMatchesPlainVerify)
{
    Rng rng(69);
    Fr x = Fr::random(rng);
    auto proof = fixture().proveFor(x, rng);
    Fr y = fixture().circ.evaluate(x);
    EXPECT_EQ(Scheme::verify(fixture().keys.vk, {y}, proof),
              Scheme::verifyBatch(fixture().keys.vk, {{y}}, {proof},
                                  rng));
    EXPECT_FALSE(Scheme::verifyBatch(fixture().keys.vk,
                                     {{y + Fr::one()}}, {proof}, rng));
}

// ---------------------------------------------------------------------
// Parameterized sweeps over circuit size (TEST_P)
// ---------------------------------------------------------------------

class Groth16SizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(Groth16SizeSweep, CompletenessAcrossSizes)
{
    const std::size_t e = GetParam();
    r1cs::ExponentiationCircuit<Fr> circ(e);
    auto cs = circ.builder.compile();
    ASSERT_EQ(cs.numConstraints(), e);
    r1cs::WitnessCalculator<Fr> calc(circ.builder.witnessProgram());

    Rng rng(100 + (u64)e);
    auto keys = Scheme::setup(cs, rng);
    Fr x = Fr::random(rng);
    Fr y = circ.evaluate(x);
    auto z = calc.compute({y}, {x});
    ASSERT_TRUE(cs.isSatisfied(z));
    auto proof = Scheme::prove(keys.pk, cs, z, rng);
    EXPECT_TRUE(Scheme::verify(keys.vk, {y}, proof));
    EXPECT_FALSE(Scheme::verify(keys.vk, {y + Fr::one()}, proof));
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, Groth16SizeSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 31, 64,
                                           100, 257));

class WitnessSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WitnessSizeSweep, SatisfiabilityInvariant)
{
    // Property: for every size, the witness the interpreter builds
    // satisfies the compiled system for 3 random inputs, and a
    // perturbed internal wire never does.
    const std::size_t e = GetParam();
    r1cs::ExponentiationCircuit<Fr> circ(e);
    auto cs = circ.builder.compile();
    r1cs::WitnessCalculator<Fr> calc(circ.builder.witnessProgram());
    Rng rng(200 + (u64)e);
    for (int round = 0; round < 3; ++round) {
        Fr x = Fr::random(rng);
        auto z = calc.compute({circ.evaluate(x)}, {x});
        EXPECT_TRUE(cs.isSatisfied(z));
        if (z.size() > 3) {
            auto z_bad = z;
            z_bad[3] += Fr::one();
            EXPECT_FALSE(cs.isSatisfied(z_bad));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WitnessSizeSweep,
                         ::testing::Values(2, 7, 32, 129, 512));

} // namespace
} // namespace zkp::snark
