/**
 * @file
 * ProofService contract tests: end-to-end prove/verify through a real
 * Groth16 host at a small circuit size, plus scheduling semantics
 * (backpressure, priority, deadlines, cancellation, verify batching,
 * drain/shutdown) driven deterministically through a latch-controlled
 * synthetic host. Runs under the TSan CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/circuit_host.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace zkp::serve {
namespace {

using Fr = snark::Bn254::Fr;

constexpr std::size_t kSmallExp = 64; // 2^6 constraints

/** Fixed service shape so environment knobs cannot skew a test. */
ServiceConfig
testConfig(std::size_t workers, std::size_t queue)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = queue;
    cfg.proveThreads = 1;
    return cfg;
}

/** Valid (public, private) inputs for the exponentiation host. */
std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
expInputs(u64 seed)
{
    Rng rng(seed);
    const Fr x = Fr::random(rng);
    const Fr y = x.pow(BigInt<1>((u64)kSmallExp));
    return {encodeScalars<Fr>({y}), encodeScalars<Fr>({x})};
}

// ---------------------------------------------------------------------
// End-to-end through the real Groth16 host
// ---------------------------------------------------------------------

TEST(ProofService, ProveThenVerifyRoundTrip)
{
    ProofService service(testConfig(2, 16));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(101);
    Response proved =
        service.submitProve("exp6", pub, priv).result.get();
    ASSERT_EQ(proved.status, Status::Ok);
    ASSERT_FALSE(proved.proof.empty());
    // Proofs leave the service in the framed encoding.
    EXPECT_EQ(proved.proof[0], 'Z');

    Response verified =
        service.submitVerify("exp6", pub, proved.proof).result.get();
    ASSERT_EQ(verified.status, Status::Ok);
    EXPECT_TRUE(verified.valid);

    // The same proof against the wrong public input must not verify.
    auto [pub2, priv2] = expInputs(202);
    Response wrong =
        service.submitVerify("exp6", pub2, proved.proof).result.get();
    ASSERT_EQ(wrong.status, Status::Ok);
    EXPECT_FALSE(wrong.valid);
}

TEST(ProofService, UnknownCircuitAndInvalidInputs)
{
    ProofService service(testConfig(1, 8));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(303);
    EXPECT_EQ(service.submitProve("nope", pub, priv).result.get()
                  .status,
              Status::UnknownCircuit);

    // Wrong input length: one public scalar expected, two given.
    auto doubled = pub;
    doubled.insert(doubled.end(), pub.begin(), pub.end());
    EXPECT_EQ(service.submitProve("exp6", doubled, priv).result.get()
                  .status,
              Status::InvalidRequest);

    // Garbage proof bytes on verify.
    std::vector<std::uint8_t> junk(16, 0xee);
    EXPECT_EQ(service.submitVerify("exp6", pub, junk).result.get()
                  .status,
              Status::InvalidRequest);
}

TEST(ProofService, ConcurrentRequestsShareOneKeyBuild)
{
    ProofService service(testConfig(4, 32));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    std::vector<ProofService::Ticket> tickets;
    for (int i = 0; i < 6; ++i) {
        auto [pub, priv] = expInputs(400 + (u64)i);
        tickets.push_back(service.submitProve("exp6", pub, priv));
    }
    for (auto& t : tickets)
        EXPECT_EQ(t.result.get().status, Status::Ok);
    // Singleflight: six concurrent cold requests, one setup.
    EXPECT_EQ(service.stats().cache.builds, 1u);
}

// ---------------------------------------------------------------------
// Scheduling semantics via a latch-controlled host
// ---------------------------------------------------------------------

/** Shared latch: proves block until release(); starts are recorded. */
struct HostControl
{
    std::mutex mu;
    std::condition_variable cv;
    bool released = false;
    std::vector<std::uint8_t> startOrder; // first input byte per job

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mu);
        released = true;
        cv.notify_all();
    }

    /// Block until at least @p n proves have started executing.
    void
    awaitStarts(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return startOrder.size() >= n; });
    }
};

CircuitHost
makeLatchHost(std::string name, std::shared_ptr<HostControl> ctl)
{
    CircuitHost host;
    host.name = std::move(name);
    host.curve = "latch";
    host.constraints = 1;
    host.build = [] {
        KeyCache::Built b;
        b.value = std::shared_ptr<const void>(
            new int(0),
            [](const void* p) { delete static_cast<const int*>(p); });
        b.bytes = 1;
        return b;
    };
    host.prove = [ctl](const void*,
                       const std::vector<std::uint8_t>& pub,
                       const std::vector<std::uint8_t>&, std::size_t,
                       std::vector<std::uint8_t>& proof_out) {
        std::unique_lock<std::mutex> lock(ctl->mu);
        ctl->startOrder.push_back(pub.empty() ? 0xff : pub[0]);
        ctl->cv.notify_all();
        ctl->cv.wait(lock, [&] { return ctl->released; });
        proof_out = {0x00};
        return Status::Ok;
    };
    host.verify = [](const void*, std::vector<VerifyItem>& items) {
        for (auto& item : items) {
            item.status = Status::Ok;
            item.valid = true;
        }
    };
    return host;
}

TEST(ProofService, QueueFullBackpressure)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 1));
    service.registerCircuit(makeLatchHost("latch", ctl));

    // First job occupies the single worker...
    auto t1 = service.submitProve("latch", {1}, {});
    ctl->awaitStarts(1);
    // ...second fills the queue (capacity 1)...
    auto t2 = service.submitProve("latch", {2}, {});
    // ...third must bounce with explicit backpressure, immediately.
    auto t3 = service.submitProve("latch", {3}, {});
    EXPECT_EQ(t3.result.get().status, Status::QueueFull);
    EXPECT_EQ(service.stats().rejectedQueueFull, 1u);

    ctl->release();
    EXPECT_EQ(t1.result.get().status, Status::Ok);
    EXPECT_EQ(t2.result.get().status, Status::Ok);
}

TEST(RequestQueue, PushDistinguishesFullFromClosed)
{
    RequestQueue queue(1);

    auto a = std::make_unique<Job>();
    EXPECT_EQ(queue.tryPush(a), RequestQueue::PushResult::Accepted);
    EXPECT_EQ(a, nullptr); // accepted: ownership moved into the queue

    auto b = std::make_unique<Job>();
    EXPECT_EQ(queue.tryPush(b), RequestQueue::PushResult::Full);
    ASSERT_NE(b, nullptr); // rejected: caller keeps the job

    // Once closed, rejection must say Closed even though the queue is
    // also full — the service settles these as ShuttingDown, not
    // QueueFull, so retry-on-QueueFull clients don't spin on a
    // terminating service.
    queue.close();
    EXPECT_EQ(queue.tryPush(b), RequestQueue::PushResult::Closed);
    ASSERT_NE(b, nullptr);

    // The job accepted before close still drains.
    EXPECT_NE(queue.pop(), nullptr);
    EXPECT_EQ(queue.pop(), nullptr); // closed and empty
}

TEST(ProofService, InteractiveDequeuesBeforeBatch)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1); // worker busy; the next two queue up

    RequestOptions batch;
    batch.priority = Priority::Batch;
    auto tb = service.submitProve("latch", {7}, {}, batch);
    auto ti = service.submitProve("latch", {9}, {});

    ctl->release();
    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(tb.result.get().status, Status::Ok);
    EXPECT_EQ(ti.result.get().status, Status::Ok);

    // Interactive (9) was submitted after batch (7) but ran first.
    ASSERT_EQ(ctl->startOrder.size(), 3u);
    EXPECT_EQ(ctl->startOrder[1], 9);
    EXPECT_EQ(ctl->startOrder[2], 7);
}

TEST(ProofService, DeadlineExpiresWhileQueued)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    RequestOptions expiring;
    expiring.timeoutSeconds = 0.05;
    auto t1 = service.submitProve("latch", {1}, {}, expiring);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ctl->release();

    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(t1.result.get().status, Status::DeadlineExceeded);
    EXPECT_EQ(service.stats().deadlineExceeded, 1u);
}

TEST(ProofService, CancelBeforeExecution)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    auto t1 = service.submitProve("latch", {1}, {});
    t1.cancel();
    ctl->release();

    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(t1.result.get().status, Status::Canceled);
    EXPECT_EQ(service.stats().canceled, 1u);
}

TEST(ProofService, QueuedVerifiesSettleAsOneBatch)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 16));
    service.registerCircuit(makeLatchHost("latch", ctl));

    // Hold the single worker so the verifies pile up in the queue.
    auto blocker = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    std::vector<ProofService::Ticket> verifies;
    for (int i = 0; i < 4; ++i)
        verifies.push_back(
            service.submitVerify("latch", {(std::uint8_t)i}, {0x00}));
    ctl->release();

    EXPECT_EQ(blocker.result.get().status, Status::Ok);
    for (auto& t : verifies) {
        Response r = t.result.get();
        EXPECT_EQ(r.status, Status::Ok);
        EXPECT_TRUE(r.valid);
        // All four were drained by one worker pass and settled with
        // a single host->verify call.
        EXPECT_EQ(r.batchSize, 4u);
    }
}

TEST(ProofService, DrainCompletesEverythingThenRejects)
{
    ProofService service(testConfig(2, 32));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    std::vector<ProofService::Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
        auto [pub, priv] = expInputs(500 + (u64)i);
        tickets.push_back(service.submitProve("exp6", pub, priv));
    }
    service.drain();
    for (auto& t : tickets)
        EXPECT_EQ(t.result.get().status, Status::Ok);
    EXPECT_EQ(service.stats().completed, 8u);

    auto [pub, priv] = expInputs(600);
    EXPECT_EQ(service.submitProve("exp6", pub, priv).result.get()
                  .status,
              Status::ShuttingDown);
}

TEST(ProofService, ShutdownFailsQueuedButFinishesInFlight)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto running = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);
    auto queued = service.submitProve("latch", {1}, {});

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ctl->release();
    });
    service.shutdown(); // fails `queued` fast, waits for `running`
    releaser.join();

    EXPECT_EQ(running.result.get().status, Status::Ok);
    EXPECT_EQ(queued.result.get().status, Status::ShuttingDown);
}

TEST(ProofService, DestructorShutsDownCleanly)
{
    auto ctl = std::make_shared<HostControl>();
    ctl->released = true; // proves complete immediately
    {
        ProofService service(testConfig(2, 8));
        service.registerCircuit(makeLatchHost("latch", ctl));
        for (int i = 0; i < 4; ++i)
            (void)service.submitProve("latch",
                                      {(std::uint8_t)i}, {});
        // Destructor must settle or fail every outstanding promise
        // without deadlocking.
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Wire protocol encode/decode (transportless)
// ---------------------------------------------------------------------

TEST(WireProtocol, FrameAndMessageRoundTrip)
{
    wire::ProveRequest m;
    m.priority = Priority::Batch;
    m.timeoutMicros = 250000;
    m.circuit = "exp12";
    m.publicInputs = {1, 2, 3};
    m.privateInputs = {4, 5};

    wire::Frame f;
    f.type = wire::MsgType::ProveRequest;
    f.id = 77;
    f.body = wire::encodeProveRequest(m);

    auto payload = wire::encodePayload(f);
    auto back = wire::decodePayload(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, wire::MsgType::ProveRequest);
    EXPECT_EQ(back->id, 77u);

    auto msg = wire::decodeProveRequest(back->body);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->priority, Priority::Batch);
    EXPECT_EQ(msg->timeoutMicros, 250000u);
    EXPECT_EQ(msg->circuit, "exp12");
    EXPECT_EQ(msg->publicInputs, m.publicInputs);
    EXPECT_EQ(msg->privateInputs, m.privateInputs);
}

TEST(WireProtocol, RejectsForeignAndTruncatedPayloads)
{
    wire::Frame f;
    f.type = wire::MsgType::Ping;
    f.id = 1;
    auto payload = wire::encodePayload(f);

    // Unsupported schema version.
    auto future = payload;
    future[3] = 99;
    EXPECT_FALSE(wire::decodePayload(future).has_value());

    // Foreign magic.
    auto foreign = payload;
    foreign[0] = 'X';
    EXPECT_FALSE(wire::decodePayload(foreign).has_value());

    // Truncated header.
    std::vector<std::uint8_t> shorty(payload.begin(),
                                     payload.begin() + 3);
    EXPECT_FALSE(wire::decodePayload(shorty).has_value());
}

TEST(WireProtocol, ResultRoundTripAndBoundsChecks)
{
    wire::Result m;
    m.status = Status::Ok;
    m.valid = true;
    m.batchSize = 5;
    m.queueMicros = 11;
    m.execMicros = 22;
    m.proof = {9, 9, 9};
    auto body = wire::encodeResult(m);
    auto back = wire::decodeResult(body);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, Status::Ok);
    EXPECT_TRUE(back->valid);
    EXPECT_EQ(back->batchSize, 5u);
    EXPECT_EQ(back->proof, m.proof);

    // Out-of-range status byte must not decode.
    body[0] = 0x7f;
    EXPECT_FALSE(wire::decodeResult(body).has_value());
}

} // namespace
} // namespace zkp::serve
