/**
 * @file
 * ProofService contract tests: end-to-end prove/verify through a real
 * Groth16 host at a small circuit size, plus scheduling semantics
 * (backpressure, priority, deadlines, cancellation, verify batching,
 * drain/shutdown) driven deterministically through a latch-controlled
 * synthetic host. Runs under the TSan CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/circuit_host.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/stark_host.h"

namespace zkp::serve {
namespace {

using Fr = snark::Bn254::Fr;

constexpr std::size_t kSmallExp = 64; // 2^6 constraints

/** Fixed service shape so environment knobs cannot skew a test. */
ServiceConfig
testConfig(std::size_t workers, std::size_t queue)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = queue;
    cfg.proveThreads = 1;
    return cfg;
}

/** Valid (public, private) inputs for the exponentiation host. */
std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
expInputs(u64 seed)
{
    Rng rng(seed);
    const Fr x = Fr::random(rng);
    const Fr y = x.pow(BigInt<1>((u64)kSmallExp));
    return {encodeScalars<Fr>({y}), encodeScalars<Fr>({x})};
}

// ---------------------------------------------------------------------
// End-to-end through the real Groth16 host
// ---------------------------------------------------------------------

TEST(ProofService, ProveThenVerifyRoundTrip)
{
    ProofService service(testConfig(2, 16));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(101);
    Response proved =
        service.submitProve("exp6", pub, priv).result.get();
    ASSERT_EQ(proved.status, Status::Ok);
    ASSERT_FALSE(proved.proof.empty());
    // Proofs leave the service in the framed encoding.
    EXPECT_EQ(proved.proof[0], 'Z');

    Response verified =
        service.submitVerify("exp6", pub, proved.proof).result.get();
    ASSERT_EQ(verified.status, Status::Ok);
    EXPECT_TRUE(verified.valid);

    // The same proof against the wrong public input must not verify.
    auto [pub2, priv2] = expInputs(202);
    Response wrong =
        service.submitVerify("exp6", pub2, proved.proof).result.get();
    ASSERT_EQ(wrong.status, Status::Ok);
    EXPECT_FALSE(wrong.valid);
}

TEST(ProofService, UnknownCircuitAndInvalidInputs)
{
    ProofService service(testConfig(1, 8));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(303);
    EXPECT_EQ(service.submitProve("nope", pub, priv).result.get()
                  .status,
              Status::UnknownCircuit);

    // Wrong input length: one public scalar expected, two given.
    auto doubled = pub;
    doubled.insert(doubled.end(), pub.begin(), pub.end());
    EXPECT_EQ(service.submitProve("exp6", doubled, priv).result.get()
                  .status,
              Status::InvalidRequest);

    // Garbage proof bytes on verify.
    std::vector<std::uint8_t> junk(16, 0xee);
    EXPECT_EQ(service.submitVerify("exp6", pub, junk).result.get()
                  .status,
              Status::InvalidRequest);
}

TEST(ProofService, ConcurrentRequestsShareOneKeyBuild)
{
    ProofService service(testConfig(4, 32));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    std::vector<ProofService::Ticket> tickets;
    for (int i = 0; i < 6; ++i) {
        auto [pub, priv] = expInputs(400 + (u64)i);
        tickets.push_back(service.submitProve("exp6", pub, priv));
    }
    for (auto& t : tickets)
        EXPECT_EQ(t.result.get().status, Status::Ok);
    // Singleflight: six concurrent cold requests, one setup.
    EXPECT_EQ(service.stats().cache.builds, 1u);
}

// ---------------------------------------------------------------------
// Scheduling semantics via a latch-controlled host
// ---------------------------------------------------------------------

/** Shared latch: proves block until release(); starts are recorded. */
struct HostControl
{
    std::mutex mu;
    std::condition_variable cv;
    bool released = false;
    std::vector<std::uint8_t> startOrder; // first input byte per job

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mu);
        released = true;
        cv.notify_all();
    }

    /// Block until at least @p n proves have started executing.
    void
    awaitStarts(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return startOrder.size() >= n; });
    }
};

CircuitHost
makeLatchHost(std::string name, std::shared_ptr<HostControl> ctl)
{
    CircuitHost host;
    host.name = std::move(name);
    host.curve = "latch";
    host.constraints = 1;
    host.build = [] {
        KeyCache::Built b;
        b.value = std::shared_ptr<const void>(
            new int(0),
            [](const void* p) { delete static_cast<const int*>(p); });
        b.bytes = 1;
        return b;
    };
    host.prove = [ctl](const void*,
                       const std::vector<std::uint8_t>& pub,
                       const std::vector<std::uint8_t>&, std::size_t,
                       std::vector<std::uint8_t>& proof_out) {
        std::unique_lock<std::mutex> lock(ctl->mu);
        ctl->startOrder.push_back(pub.empty() ? 0xff : pub[0]);
        ctl->cv.notify_all();
        ctl->cv.wait(lock, [&] { return ctl->released; });
        proof_out = {0x00};
        return Status::Ok;
    };
    host.verify = [](const void*, std::vector<VerifyItem>& items) {
        for (auto& item : items) {
            item.status = Status::Ok;
            item.valid = true;
        }
    };
    return host;
}

TEST(ProofService, QueueFullBackpressure)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 1));
    service.registerCircuit(makeLatchHost("latch", ctl));

    // First job occupies the single worker...
    auto t1 = service.submitProve("latch", {1}, {});
    ctl->awaitStarts(1);
    // ...second fills the queue (capacity 1)...
    auto t2 = service.submitProve("latch", {2}, {});
    // ...third must bounce with explicit backpressure, immediately.
    auto t3 = service.submitProve("latch", {3}, {});
    EXPECT_EQ(t3.result.get().status, Status::QueueFull);
    EXPECT_EQ(service.stats().rejectedQueueFull, 1u);

    ctl->release();
    EXPECT_EQ(t1.result.get().status, Status::Ok);
    EXPECT_EQ(t2.result.get().status, Status::Ok);
}

TEST(RequestQueue, PushDistinguishesFullFromClosed)
{
    RequestQueue queue(1);

    auto a = std::make_unique<Job>();
    EXPECT_EQ(queue.tryPush(a), RequestQueue::PushResult::Accepted);
    EXPECT_EQ(a, nullptr); // accepted: ownership moved into the queue

    auto b = std::make_unique<Job>();
    EXPECT_EQ(queue.tryPush(b), RequestQueue::PushResult::Full);
    ASSERT_NE(b, nullptr); // rejected: caller keeps the job

    // Once closed, rejection must say Closed even though the queue is
    // also full — the service settles these as ShuttingDown, not
    // QueueFull, so retry-on-QueueFull clients don't spin on a
    // terminating service.
    queue.close();
    EXPECT_EQ(queue.tryPush(b), RequestQueue::PushResult::Closed);
    ASSERT_NE(b, nullptr);

    // The job accepted before close still drains.
    EXPECT_NE(queue.pop(), nullptr);
    EXPECT_EQ(queue.pop(), nullptr); // closed and empty
}

TEST(ProofService, InteractiveDequeuesBeforeBatch)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1); // worker busy; the next two queue up

    RequestOptions batch;
    batch.priority = Priority::Batch;
    auto tb = service.submitProve("latch", {7}, {}, batch);
    auto ti = service.submitProve("latch", {9}, {});

    ctl->release();
    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(tb.result.get().status, Status::Ok);
    EXPECT_EQ(ti.result.get().status, Status::Ok);

    // Interactive (9) was submitted after batch (7) but ran first.
    ASSERT_EQ(ctl->startOrder.size(), 3u);
    EXPECT_EQ(ctl->startOrder[1], 9);
    EXPECT_EQ(ctl->startOrder[2], 7);
}

TEST(ProofService, DeadlineExpiresWhileQueued)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    RequestOptions expiring;
    expiring.timeoutSeconds = 0.05;
    auto t1 = service.submitProve("latch", {1}, {}, expiring);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ctl->release();

    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(t1.result.get().status, Status::DeadlineExceeded);
    EXPECT_EQ(service.stats().deadlineExceeded, 1u);
}

TEST(ProofService, CancelBeforeExecution)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto t0 = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    auto t1 = service.submitProve("latch", {1}, {});
    t1.cancel();
    ctl->release();

    EXPECT_EQ(t0.result.get().status, Status::Ok);
    EXPECT_EQ(t1.result.get().status, Status::Canceled);
    EXPECT_EQ(service.stats().canceled, 1u);
}

TEST(ProofService, QueuedVerifiesSettleAsOneBatch)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 16));
    service.registerCircuit(makeLatchHost("latch", ctl));

    // Hold the single worker so the verifies pile up in the queue.
    auto blocker = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);

    std::vector<ProofService::Ticket> verifies;
    for (int i = 0; i < 4; ++i)
        verifies.push_back(
            service.submitVerify("latch", {(std::uint8_t)i}, {0x00}));
    ctl->release();

    EXPECT_EQ(blocker.result.get().status, Status::Ok);
    for (auto& t : verifies) {
        Response r = t.result.get();
        EXPECT_EQ(r.status, Status::Ok);
        EXPECT_TRUE(r.valid);
        // All four were drained by one worker pass and settled with
        // a single host->verify call.
        EXPECT_EQ(r.batchSize, 4u);
    }
}

TEST(ProofService, DrainCompletesEverythingThenRejects)
{
    ProofService service(testConfig(2, 32));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    std::vector<ProofService::Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
        auto [pub, priv] = expInputs(500 + (u64)i);
        tickets.push_back(service.submitProve("exp6", pub, priv));
    }
    service.drain();
    for (auto& t : tickets)
        EXPECT_EQ(t.result.get().status, Status::Ok);
    EXPECT_EQ(service.stats().completed, 8u);

    auto [pub, priv] = expInputs(600);
    EXPECT_EQ(service.submitProve("exp6", pub, priv).result.get()
                  .status,
              Status::ShuttingDown);
}

TEST(ProofService, ShutdownFailsQueuedButFinishesInFlight)
{
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto running = service.submitProve("latch", {0}, {});
    ctl->awaitStarts(1);
    auto queued = service.submitProve("latch", {1}, {});

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ctl->release();
    });
    service.shutdown(); // fails `queued` fast, waits for `running`
    releaser.join();

    EXPECT_EQ(running.result.get().status, Status::Ok);
    EXPECT_EQ(queued.result.get().status, Status::ShuttingDown);
}

TEST(ProofService, DestructorShutsDownCleanly)
{
    auto ctl = std::make_shared<HostControl>();
    ctl->released = true; // proves complete immediately
    {
        ProofService service(testConfig(2, 8));
        service.registerCircuit(makeLatchHost("latch", ctl));
        for (int i = 0; i < 4; ++i)
            (void)service.submitProve("latch",
                                      {(std::uint8_t)i}, {});
        // Destructor must settle or fail every outstanding promise
        // without deadlocking.
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Wire protocol encode/decode (transportless)
// ---------------------------------------------------------------------

TEST(WireProtocol, FrameAndMessageRoundTrip)
{
    wire::ProveRequest m;
    m.priority = Priority::Batch;
    m.timeoutMicros = 250000;
    m.circuit = "exp12";
    m.publicInputs = {1, 2, 3};
    m.privateInputs = {4, 5};

    wire::Frame f;
    f.type = wire::MsgType::ProveRequest;
    f.id = 77;
    f.body = wire::encodeProveRequest(m);

    auto payload = wire::encodePayload(f);
    auto back = wire::decodePayload(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, wire::MsgType::ProveRequest);
    EXPECT_EQ(back->id, 77u);

    auto msg = wire::decodeProveRequest(back->body);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->priority, Priority::Batch);
    EXPECT_EQ(msg->timeoutMicros, 250000u);
    EXPECT_EQ(msg->circuit, "exp12");
    EXPECT_EQ(msg->publicInputs, m.publicInputs);
    EXPECT_EQ(msg->privateInputs, m.privateInputs);
}

TEST(WireProtocol, RejectsForeignAndTruncatedPayloads)
{
    wire::Frame f;
    f.type = wire::MsgType::Ping;
    f.id = 1;
    auto payload = wire::encodePayload(f);

    // Unsupported schema version.
    auto future = payload;
    future[3] = 99;
    EXPECT_FALSE(wire::decodePayload(future).has_value());

    // Foreign magic.
    auto foreign = payload;
    foreign[0] = 'X';
    EXPECT_FALSE(wire::decodePayload(foreign).has_value());

    // Truncated header.
    std::vector<std::uint8_t> shorty(payload.begin(),
                                     payload.begin() + 3);
    EXPECT_FALSE(wire::decodePayload(shorty).has_value());
}

TEST(WireProtocol, ResultRoundTripAndBoundsChecks)
{
    wire::Result m;
    m.status = Status::Ok;
    m.valid = true;
    m.batchSize = 5;
    m.queueMicros = 11;
    m.execMicros = 22;
    m.proof = {9, 9, 9};
    auto body = wire::encodeResult(m);
    auto back = wire::decodeResult(body);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, Status::Ok);
    EXPECT_TRUE(back->valid);
    EXPECT_EQ(back->batchSize, 5u);
    EXPECT_EQ(back->proof, m.proof);

    // Out-of-range status byte must not decode.
    body[0] = 0x7f;
    EXPECT_FALSE(wire::decodeResult(body).has_value());
}

TEST(WireProtocol, StatsV2RoundTripAndV1Compat)
{
    // v2: the JSON document survives the wire byte-for-byte.
    wire::StatsV2Response v2;
    v2.json = "{\"schema\":\"zkperf-serve-stats/2\",\"lanes\":[]}";
    auto body = wire::encodeStatsV2Response(v2);
    auto back = wire::decodeStatsV2Response(body);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->json, v2.json);

    // Trailing garbage must not decode.
    auto trailing = body;
    trailing.push_back(0);
    EXPECT_FALSE(
        wire::decodeStatsV2Response(trailing).has_value());

    // Truncated length prefix must not decode.
    std::vector<std::uint8_t> shorty(body.begin(), body.begin() + 4);
    EXPECT_FALSE(wire::decodeStatsV2Response(shorty).has_value());

    // v1 stays byte-identical: six little-endian u64 fields, no
    // framing changes — an old client's decoder keeps working.
    wire::StatsResponse v1;
    v1.queueDepth = 1;
    v1.accepted = 2;
    v1.completed = 3;
    v1.queueFull = 4;
    v1.deadlineExceeded = 5;
    v1.canceled = 6;
    auto v1body = wire::encodeStatsResponse(v1);
    ASSERT_EQ(v1body.size(), 48u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(v1body[i * 8], (std::uint8_t)(i + 1));
        for (std::size_t b = 1; b < 8; ++b)
            EXPECT_EQ(v1body[i * 8 + b], 0u);
    }
    auto v1back = wire::decodeStatsResponse(v1body);
    ASSERT_TRUE(v1back.has_value());
    EXPECT_EQ(v1back->completed, 3u);
    EXPECT_EQ(v1back->canceled, 6u);

    // The two stats ops stay distinct on the wire.
    EXPECT_NE((std::uint8_t)wire::MsgType::StatsV2Request,
              (std::uint8_t)wire::MsgType::StatsRequest);
    EXPECT_NE((std::uint8_t)wire::MsgType::StatsV2Response,
              (std::uint8_t)wire::MsgType::StatsResponse);
}

// ---------------------------------------------------------------------
// Request-lifecycle telemetry
// ---------------------------------------------------------------------

TEST(Telemetry, LifecycleTimestampsMonotonicPerRequest)
{
    ProofService service(testConfig(2, 16));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(303);
    const Response proved =
        service.submitProve("exp6", pub, priv).result.get();
    ASSERT_EQ(proved.status, Status::Ok);

    const Timeline& tl = proved.timeline;
    const Timeline::Clock::time_point unset{};
    ASSERT_NE(tl.arrive, unset);
    // Program order: arrive → admitted → dequeued → key-ready →
    // executed → serialized → replied, all on steady_clock.
    EXPECT_LE(tl.arrive, tl.admitted);
    EXPECT_LE(tl.admitted, tl.dequeued);
    EXPECT_LE(tl.dequeued, tl.keyReady);
    EXPECT_LE(tl.keyReady, tl.executed);
    EXPECT_LE(tl.executed, tl.serialized);
    EXPECT_LE(tl.serialized, tl.replied);

    EXPECT_GT(proved.requestId, 0u);
    EXPECT_GE(proved.queueSeconds, 0.0);
    EXPECT_GE(proved.keyWaitSeconds, 0.0);
    EXPECT_GE(proved.execSeconds, 0.0);
    EXPECT_GE(proved.serializeSeconds, 0.0);
    // The stage spans nest inside the full lifespan.
    const double e2e = Timeline::seconds(tl.arrive, tl.replied);
    EXPECT_LE(proved.keyWaitSeconds + proved.execSeconds +
                  proved.serializeSeconds,
              e2e + 1e-9);

    // Verify requests carry the same contract, and ids are unique
    // and increasing across submissions.
    const Response verified =
        service.submitVerify("exp6", pub, proved.proof).result.get();
    ASSERT_EQ(verified.status, Status::Ok);
    EXPECT_GT(verified.requestId, proved.requestId);
    EXPECT_LE(verified.timeline.arrive, verified.timeline.admitted);
    EXPECT_LE(verified.timeline.admitted,
              verified.timeline.dequeued);
    EXPECT_LE(verified.timeline.dequeued,
              verified.timeline.keyReady);
    EXPECT_LE(verified.timeline.keyReady,
              verified.timeline.executed);
    EXPECT_LE(verified.timeline.executed,
              verified.timeline.replied);
}

TEST(Telemetry, SnapshotStatsAndJsonReflectTraffic)
{
    ProofService service(testConfig(2, 16));
    service.registerCircuit(
        makeExponentiationHost<snark::Bn254>("exp6", kSmallExp));

    auto [pub, priv] = expInputs(404);
    const Response proved =
        service.submitProve("exp6", pub, priv).result.get();
    ASSERT_EQ(proved.status, Status::Ok);
    RequestOptions batchOpts;
    batchOpts.priority = Priority::Batch;
    const Response verified =
        service.submitVerify("exp6", pub, proved.proof, batchOpts)
            .result.get();
    ASSERT_EQ(verified.status, Status::Ok);

    const ServiceStatsSnapshot snap = service.snapshotStats();
    EXPECT_EQ(snap.completed, 2u);
    EXPECT_EQ(snap.accepted, 2u);
    EXPECT_GT(snap.workers, 0u);
    EXPECT_GT(snap.queueCapacity, 0u);
    EXPECT_GT(snap.uptimeSeconds, 0.0);
    EXPECT_GE(snap.cache.builds, 1u);

    // One prove/interactive lane, one verify/batch lane.
    ASSERT_EQ(snap.lanes.size(), 2u);
    for (const auto& lane : snap.lanes) {
        EXPECT_EQ(lane.circuit, "exp6");
        EXPECT_EQ(lane.completed, 1u);
        EXPECT_EQ(lane.errors, 0u);
        EXPECT_EQ(lane.e2eUs.count, 1u);
        EXPECT_GE(lane.e2eUs.quantile(0.5),
                  (double)lane.queueWaitUs.quantile(0.5));
    }

    const std::string json = service.statsJson();
    EXPECT_NE(json.find("\"schema\":\"zkperf-serve-stats/2\""),
              std::string::npos)
        << json.substr(0, 200);
    EXPECT_NE(json.find("\"completed\":2"), std::string::npos);
    for (const char* field :
         {"\"service\":", "\"cache\":", "\"lanes\":",
          "\"queue_wait_us\":", "\"key_wait_us\":", "\"exec_us\":",
          "\"serialize_us\":", "\"e2e_us\":",
          "\"deadline_slack_us\":", "\"verify_batch\":", "\"p999\":",
          "\"kind\":\"prove\"", "\"kind\":\"verify\"",
          "\"priority\":\"interactive\"", "\"priority\":\"batch\""})
        EXPECT_NE(json.find(field), std::string::npos)
            << "missing " << field << " in " << json.substr(0, 400);
}

TEST(Telemetry, ShedAndDeadlineLandInLaneCounters)
{
    // Single worker + capacity-1 queue: park a job on the worker,
    // fill the queue, and bounce a third — then read the lanes.
    auto ctl = std::make_shared<HostControl>();
    ProofService service(testConfig(1, 1));
    service.registerCircuit(makeLatchHost("latch", ctl));

    auto first = service.submitProve("latch", {1}, {});
    ctl->awaitStarts(1); // worker busy; queue empty

    auto queued = service.submitProve("latch", {2}, {});
    auto shed = service.submitProve("latch", {3}, {});
    const Response shedResp = shed.result.get();
    EXPECT_EQ(shedResp.status, Status::QueueFull);

    ctl->release();
    ASSERT_EQ(first.result.get().status, Status::Ok);
    ASSERT_EQ(queued.result.get().status, Status::Ok);

    const ServiceStatsSnapshot snap = service.snapshotStats();
    ASSERT_EQ(snap.lanes.size(), 1u);
    EXPECT_EQ(snap.lanes[0].shed, 1u);
    EXPECT_EQ(snap.lanes[0].completed, 2u);
    EXPECT_EQ(snap.rejectedQueueFull, 1u);
}

// ---------------------------------------------------------------------
// Setup-free STARK serving (no key-cache entry)
// ---------------------------------------------------------------------

TEST(StarkServing, ProveVerifyBypassesKeyCache)
{
    ProofService service(testConfig(2, 16));
    service.registerCircuit(makeStarkFibHost("stark-fib:64", 64));

    // Statement: a0 = 1, b0 = 1; derive the honest result.
    const stark::FibonacciAir air(64, stark::Gl::fromU64(1),
                                  stark::Gl::fromU64(1));
    const auto pub2 =
        encodeGl({stark::Gl::fromU64(1), stark::Gl::fromU64(1)});
    const auto pub3 = encodeGl(air.publicInputs());

    // prewarm is a no-op for a keyless host, not an error.
    service.prewarm("stark-fib:64");

    Response proved =
        service.submitProve("stark-fib:64", pub2, {}).result.get();
    ASSERT_EQ(proved.status, Status::Ok);
    ASSERT_FALSE(proved.proof.empty());

    Response verified =
        service.submitVerify("stark-fib:64", pub3, proved.proof)
            .result.get();
    ASSERT_EQ(verified.status, Status::Ok);
    EXPECT_TRUE(verified.valid);

    // Wrong claimed result: settled invalid, not an error.
    auto wrongPub = air.publicInputs();
    wrongPub.back() = wrongPub.back() + stark::Gl::one();
    Response wrong = service
                         .submitVerify("stark-fib:64",
                                       encodeGl(wrongPub),
                                       proved.proof)
                         .result.get();
    ASSERT_EQ(wrong.status, Status::Ok);
    EXPECT_FALSE(wrong.valid);

    // The cache was never touched: no entries, no misses, no builds —
    // every execution shows up as a keyless serve instead.
    const ProofService::Stats s = service.stats();
    EXPECT_EQ(s.cache.entries, 0u);
    EXPECT_EQ(s.cache.misses, 0u);
    EXPECT_EQ(s.cache.builds, 0u);
    EXPECT_EQ(s.keylessServes, 3u);

    const std::string json = service.statsJson();
    EXPECT_NE(json.find("\"keyless_serves\":3"), std::string::npos)
        << json.substr(0, 400);
}

TEST(StarkServing, MimcHostAndMalformedInputs)
{
    ProofService service(testConfig(1, 8));
    service.registerCircuit(makeStarkMimcHost("stark-mimc:64", 64));

    const stark::MimcAir air(64, stark::Gl::fromU64(9));
    const auto pub = encodeGl(air.publicInputs());

    Response proved =
        service.submitProve("stark-mimc:64", pub, {}).result.get();
    ASSERT_EQ(proved.status, Status::Ok);

    Response verified =
        service.submitVerify("stark-mimc:64", pub, proved.proof)
            .result.get();
    ASSERT_EQ(verified.status, Status::Ok);
    EXPECT_TRUE(verified.valid);

    // A non-empty private input is a protocol violation (the trace is
    // recomputed from the statement).
    EXPECT_EQ(service.submitProve("stark-mimc:64", pub, {0x01})
                  .result.get()
                  .status,
              Status::InvalidRequest);

    // Truncated statement and garbage proof bytes.
    std::vector<std::uint8_t> shortPub(pub.begin(), pub.end() - 1);
    EXPECT_EQ(service.submitProve("stark-mimc:64", shortPub, {})
                  .result.get()
                  .status,
              Status::InvalidRequest);
    std::vector<std::uint8_t> junk(16, 0xee);
    EXPECT_EQ(service.submitVerify("stark-mimc:64", pub, junk)
                  .result.get()
                  .status,
              Status::InvalidRequest);
}

} // namespace
} // namespace zkp::serve
