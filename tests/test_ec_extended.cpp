/**
 * @file
 * Extended curve-layer tests: representation invariance, fixed-base
 * tables, MSM window heuristics, and parameterized scalar sweeps.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/fixed_base.h"
#include "ec/groups.h"
#include "ec/msm.h"

namespace zkp::ec {
namespace {

using G1 = Bn254G1;
using Fr = G1::Scalar;
using Jac = G1::Jacobian;

TEST(Representation, EqualityAcrossZ)
{
    // The same affine point under different Jacobian Z coordinates
    // must compare equal.
    Jac g{G1::generator()};
    Jac p = g.mulScalar((u64)777);
    // Scale (X, Y, Z) -> (l^2 X, l^3 Y, l Z).
    auto l = G1::Field::fromU64(5);
    Jac q;
    q.x = p.x * l.squared();
    q.y = p.y * l.squared() * l;
    q.z = p.z * l;
    EXPECT_EQ(p, q);
    EXPECT_EQ(p.toAffine(), q.toAffine());
    EXPECT_EQ(p + q, p.doubled());
}

TEST(Representation, NegationAndSubtraction)
{
    Jac g{G1::generator()};
    Jac p = g.mulScalar((u64)31);
    Jac q = g.mulScalar((u64)13);
    EXPECT_EQ(p - q, g.mulScalar((u64)18));
    EXPECT_EQ(-(-p), p);
    EXPECT_TRUE((-Jac::infinity()).isInfinity());
    // Affine negation stays on curve.
    auto aff = p.toAffine();
    EXPECT_TRUE(aff.negated().isOnCurve(G1::b()));
    EXPECT_EQ(Jac(aff.negated()), -p);
}

TEST(Representation, OffCurvePointDetected)
{
    auto aff = G1::generator();
    aff.x += G1::Field::one();
    EXPECT_FALSE(aff.isOnCurve(G1::b()));
}

TEST(FixedBase, MatchesScalarMulOnEdgeScalars)
{
    Jac g{G1::generator()};
    FixedBaseTable<Jac, Fr::Repr> table(g);

    // Zero, one, small, and max-ish scalars.
    EXPECT_TRUE(table.mul(Fr::Repr(0)).isInfinity());
    EXPECT_EQ(table.mul(Fr::Repr(1)), g);
    EXPECT_EQ(table.mul(Fr::Repr(255)), g.mulScalar((u64)255));
    EXPECT_EQ(table.mul(Fr::Repr(256)), g.mulScalar((u64)256));

    auto rm1 = Fr::kModulus;
    rm1.subInPlace(Fr::Repr(1));
    EXPECT_EQ(table.mul(rm1), -g); // (r-1)G == -G
    EXPECT_GT(table.footprintBytes(), 0u);
}

class FixedBaseScalarSweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(FixedBaseScalarSweep, AgreesWithDoubleAndAdd)
{
    Rng rng(GetParam());
    Jac g{G1::generator()};
    static FixedBaseTable<Jac, Fr::Repr> table(g);
    Fr k = Fr::random(rng);
    EXPECT_EQ(table.mul(k.toBigInt()), g.mulScalar(k.toBigInt()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedBaseScalarSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class MsmSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MsmSizeSweep, MatchesNaiveAcrossSizes)
{
    const std::size_t n = GetParam();
    Rng rng(500 + n);
    Jac g{G1::generator()};
    std::vector<G1::Affine> pts;
    std::vector<Fr::Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(1 << 14) + 1)
                          .toAffine());
        // Mix tiny, zero, and full-width scalars.
        if (i % 5 == 0)
            scalars.push_back(Fr::Repr(i % 3));
        else
            scalars.push_back(Fr::random(rng).toBigInt());
    }
    auto fast = msm<Jac>(pts.data(), scalars.data(), n);
    auto naive = msmNaive<Jac>(pts.data(), scalars.data(), n);
    EXPECT_EQ(fast, naive);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsmSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 17, 33, 90));

TEST(MsmProperties, LinearInScalars)
{
    // msm(points, s) + msm(points, t) == msm(points, s + t).
    Rng rng(501);
    Jac g{G1::generator()};
    const std::size_t n = 24;
    std::vector<G1::Affine> pts;
    std::vector<Fr> s(n), t(n), sum(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(1000) + 1).toAffine());
        s[i] = Fr::random(rng);
        t[i] = Fr::random(rng);
        sum[i] = s[i] + t[i];
    }
    auto to_repr = [](const std::vector<Fr>& v) {
        std::vector<Fr::Repr> r(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            r[i] = v[i].toBigInt();
        return r;
    };
    auto rs = to_repr(s), rt = to_repr(t), rsum = to_repr(sum);
    EXPECT_EQ(msm<Jac>(pts.data(), rs.data(), n) +
                  msm<Jac>(pts.data(), rt.data(), n),
              msm<Jac>(pts.data(), rsum.data(), n));
}

TEST(MsmProperties, PermutationInvariant)
{
    Rng rng(502);
    Jac g{G1::generator()};
    const std::size_t n = 20;
    std::vector<G1::Affine> pts;
    std::vector<Fr::Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(997) + 1).toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    auto base = msm<Jac>(pts.data(), scalars.data(), n);
    // Reverse both arrays.
    std::reverse(pts.begin(), pts.end());
    std::reverse(scalars.begin(), scalars.end());
    EXPECT_EQ(msm<Jac>(pts.data(), scalars.data(), n), base);
}

TEST(MsmProperties, InfinityPointsContributeNothing)
{
    Rng rng(503);
    Jac g{G1::generator()};
    std::vector<G1::Affine> pts{g.toAffine(), G1::Affine(),
                                g.doubled().toAffine()};
    std::vector<Fr::Repr> scalars{Fr::Repr(3), Fr::Repr(1000),
                                  Fr::Repr(4)};
    EXPECT_EQ(msm<Jac>(pts.data(), scalars.data(), 3),
              g.mulScalar((u64)11)); // 3*1 + 4*2
}

TEST(G2Arithmetic, TwistCoefficientConsistency)
{
    // b2 of the D-twist times xi equals 3 (BN254); the M-twist b2 of
    // BLS12-381 equals 4*xi.
    auto bn_b2 = Bn254G2::b() * ff::Bn254Tower::xi();
    EXPECT_TRUE(bn_b2 ==
                Bn254G2::Field::fromFq(ff::bn254::Fq::fromU64(3)));
    auto bls_b2 = Bls381G2::b();
    EXPECT_TRUE(bls_b2 ==
                ff::Bls381Tower::xi().mulByFq(
                    ff::bls381::Fq::fromU64(4)));
}

TEST(BatchToAffineExtended, AllInfinity)
{
    std::vector<Jac> pts(4, Jac::infinity());
    auto affs = batchToAffine(pts);
    for (const auto& a : affs)
        EXPECT_TRUE(a.infinity);
}

// --- Signed-window MSM vs naive on adversarial scalars ---------------
//
// The signed-digit decomposition (bias trick, msm.h) must be exact for
// every representable scalar, including values that are NOT reduced
// mod r: zero, r - 1, all-ones 2^256 - 1, and single set bits at limb
// boundaries — the cases that stress digit recentering, the headroom
// window, and the limb-straddling window read.

std::vector<Fr::Repr>
adversarialScalars()
{
    std::vector<Fr::Repr> out;
    out.push_back(Fr::Repr(0));
    out.push_back(Fr::Repr(1));
    auto rm1 = Fr::kModulus;
    rm1.subInPlace(Fr::Repr(1));
    out.push_back(rm1); // r - 1: largest reduced scalar
    Fr::Repr ones;
    for (std::size_t i = 0; i < Fr::Repr::kLimbs; ++i)
        ones.limbs[i] = ~u64(0);
    out.push_back(ones); // 2^256 - 1: non-reduced, max headroom
    for (std::size_t b : {0, 63, 64, 127, 128, 255}) {
        Fr::Repr one_bit;
        one_bit.limbs[b / 64] = u64(1) << (b % 64);
        out.push_back(one_bit);
    }
    return out;
}

TEST(MsmSignedWindows, AdversarialScalarsMatchNaive)
{
    Rng rng(601);
    Jac g{G1::generator()};
    const auto special = adversarialScalars();

    // Pad with random scalars so n clears the Pippenger path (the
    // heuristic falls back to tiny windows below 32 points).
    std::vector<G1::Affine> pts;
    std::vector<Fr::Repr> scalars;
    for (std::size_t i = 0; i < special.size(); ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(4096) + 1).toAffine());
        scalars.push_back(special[i]);
    }
    while (scalars.size() < 48) {
        pts.push_back(g.mulScalar(rng.nextBelow(4096) + 1).toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    const std::size_t n = scalars.size();

    const auto naive = msmNaive<Jac>(pts.data(), scalars.data(), n);
    for (std::size_t threads = 1; threads <= 4; ++threads)
        EXPECT_EQ(msm<Jac>(pts.data(), scalars.data(), n, threads),
                  naive)
            << "threads = " << threads;
}

TEST(MsmSignedWindows, SingleAdversarialScalarExactness)
{
    // Each adversarial scalar alone against one point: any digit
    // decoding error shows up undiluted.
    Jac g{G1::generator()};
    const auto pt = g.mulScalar((u64)97).toAffine();
    for (const auto& s : adversarialScalars()) {
        std::vector<G1::Affine> pts(33, pt);
        std::vector<Fr::Repr> scalars(33, Fr::Repr(0));
        scalars[17] = s;
        EXPECT_EQ(msm<Jac>(pts.data(), scalars.data(), pts.size()),
                  msmNaive<Jac>(pts.data(), scalars.data(), pts.size()))
            << "scalar " << s.toHex();
    }
}

TEST(MsmSignedWindows, WindowParallelMatchesNaive)
{
    // Direct coverage of the per-window decomposition (msm() only
    // routes there above kMsmWindowParallelMin points).
    Rng rng(603);
    Jac g{G1::generator()};
    const auto special = adversarialScalars();
    std::vector<G1::Affine> pts;
    std::vector<Fr::Repr> scalars;
    for (std::size_t i = 0; i < 64; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(8192) + 1).toAffine());
        scalars.push_back(i < special.size()
                              ? special[i]
                              : Fr::random(rng).toBigInt());
    }
    const auto naive = msmNaive<Jac>(pts.data(), scalars.data(),
                                     scalars.size());
    for (std::size_t threads : {1, 2, 4})
        EXPECT_EQ(msmWindowParallel<Jac>(pts.data(), scalars.data(),
                                         scalars.size(), threads),
                  naive)
            << "threads = " << threads;
}

TEST(MsmSignedWindows, BiasDigitsReconstructScalar)
{
    // Decode every signed digit of the biased form and rebuild the
    // scalar as an integer: sum_w d_w * 2^(wc) over a 320-bit
    // accumulator must give back the original 256-bit value.
    for (unsigned c : {2u, 5u, 13u, 16u}) {
        for (const auto& s : adversarialScalars()) {
            const unsigned windows = msmSignedWindows<Fr::Repr>(c);
            const auto biased = msmBiasScalars(&s, 1, c);
            const long half = (long)(1L << (c - 1));
            BigInt<5> acc;
            for (unsigned w = windows; w-- > 0;) {
                for (unsigned i = 0; i < c; ++i)
                    acc.shl1InPlace();
                const long d =
                    (long)biased[0].bits((std::size_t)w * c, c) - half;
                BigInt<5> mag((u64)(d < 0 ? -d : d));
                if (d >= 0)
                    acc.addInPlace(mag);
                else
                    acc.subInPlace(mag);
            }
            EXPECT_EQ(truncate<4>(acc), s)
                << "c = " << c << ", scalar " << s.toHex();
            EXPECT_EQ(acc.limbs[4], 0u);
        }
    }
}

} // namespace
} // namespace zkp::ec
