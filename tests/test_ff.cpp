/**
 * @file
 * Unit and property tests for the prime fields and extension towers.
 */

#include <gtest/gtest.h>

#include "common/bignum.h"
#include "common/rng.h"
#include "ff/field_util.h"
#include "ff/fp12.h"
#include "ff/params.h"

namespace zkp::ff {
namespace {

// ---------------------------------------------------------------------
// Typed field-axiom tests across all four prime fields.
// ---------------------------------------------------------------------

template <typename F>
class PrimeFieldTest : public ::testing::Test
{
};

using PrimeFields =
    ::testing::Types<bn254::Fq, bn254::Fr, bls381::Fq, bls381::Fr>;
TYPED_TEST_SUITE(PrimeFieldTest, PrimeFields);

TYPED_TEST(PrimeFieldTest, Identities)
{
    using F = TypeParam;
    Rng rng(1);
    for (int i = 0; i < 32; ++i) {
        F a = F::random(rng);
        EXPECT_EQ(a + F::zero(), a);
        EXPECT_EQ(a * F::one(), a);
        EXPECT_EQ(a - a, F::zero());
        EXPECT_EQ(a + (-a), F::zero());
        EXPECT_EQ(a * F::zero(), F::zero());
    }
}

TYPED_TEST(PrimeFieldTest, CommutativityAssociativityDistributivity)
{
    using F = TypeParam;
    Rng rng(2);
    for (int i = 0; i < 32; ++i) {
        F a = F::random(rng);
        F b = F::random(rng);
        F c = F::random(rng);
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TYPED_TEST(PrimeFieldTest, InverseRoundTrip)
{
    using F = TypeParam;
    Rng rng(3);
    for (int i = 0; i < 16; ++i) {
        F a = F::random(rng);
        if (a.isZero())
            continue;
        EXPECT_EQ(a * a.inverse(), F::one());
    }
}

TYPED_TEST(PrimeFieldTest, MontgomeryRoundTrip)
{
    using F = TypeParam;
    Rng rng(4);
    for (int i = 0; i < 16; ++i) {
        F a = F::random(rng);
        EXPECT_EQ(F::fromBigInt(a.toBigInt()), a);
    }
    EXPECT_EQ(F::fromU64(1), F::one());
    EXPECT_TRUE(F::fromU64(0).isZero());
}

TYPED_TEST(PrimeFieldTest, MatchesBigNumReference)
{
    // Cross-check Montgomery multiplication against the independent
    // dynamic bignum implementation.
    using F = TypeParam;
    const BigNum p = BigNum::fromBigInt(F::kModulus);
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
        F a = F::random(rng);
        F b = F::random(rng);
        BigNum ref = (BigNum::fromBigInt(a.toBigInt()) *
                      BigNum::fromBigInt(b.toBigInt())) %
                     p;
        EXPECT_EQ(BigNum::fromBigInt((a * b).toBigInt()), ref);

        BigNum sum = (BigNum::fromBigInt(a.toBigInt()) +
                      BigNum::fromBigInt(b.toBigInt())) %
                     p;
        EXPECT_EQ(BigNum::fromBigInt((a + b).toBigInt()), sum);
    }
}

TYPED_TEST(PrimeFieldTest, FermatLittleTheorem)
{
    using F = TypeParam;
    Rng rng(6);
    F a = F::random(rng);
    typename F::Repr e = F::kModulus;
    e.subInPlace(typename F::Repr(1));
    EXPECT_EQ(a.pow(e), F::one());
}

TYPED_TEST(PrimeFieldTest, SqrtOfSquare)
{
    using F = TypeParam;
    Rng rng(7);
    for (int i = 0; i < 8; ++i) {
        F a = F::random(rng);
        F sq = a.squared();
        F root;
        ASSERT_TRUE(sq.sqrt(root));
        EXPECT_TRUE(root == a || root == -a);
    }
}

TYPED_TEST(PrimeFieldTest, LegendreSymbol)
{
    using F = TypeParam;
    Rng rng(8);
    F a = F::random(rng);
    while (a.isZero())
        a = F::random(rng);
    EXPECT_EQ(a.squared().legendre(), 1);
    EXPECT_EQ(F::zero().legendre(), 0);
}

TYPED_TEST(PrimeFieldTest, BatchInverseMatchesSingle)
{
    using F = TypeParam;
    Rng rng(9);
    std::vector<F> v;
    for (int i = 0; i < 20; ++i) {
        F a = F::random(rng);
        if (!a.isZero())
            v.push_back(a);
    }
    std::vector<F> batch = v;
    batchInverse(batch.data(), batch.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(batch[i], v[i].inverse());
}

TYPED_TEST(PrimeFieldTest, MulBatchAllImplsMatchOperator)
{
    using F = TypeParam;
    Rng rng(7);
    // Odd length so every path exercises its tail handling.
    constexpr std::size_t kN = 37;
    std::vector<F> a(kN), b(kN), expect(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        a[i] = F::random(rng);
        b[i] = F::random(rng);
        expect[i] = a[i] * b[i];
    }
    // Edge values among random ones.
    a[0] = F::zero();
    b[1] = F::zero();
    a[2] = F::one();
    b[3] = -F::one();
    for (std::size_t i = 0; i < 4; ++i)
        expect[i] = a[i] * b[i];

    std::vector<MulImpl> impls = {MulImpl::kScalar, MulImpl::kInterleaved};
    if (ifmaSupported())
        impls.push_back(MulImpl::kIfma);
    for (MulImpl impl : impls) {
        std::vector<F> out(kN);
        F::mulBatch(out.data(), a.data(), b.data(), kN, impl);
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(out[i], expect[i]) << "impl=" << (int)impl
                                         << " i=" << i;
    }

    // In-place aliasing: out == a.
    for (MulImpl impl : impls) {
        std::vector<F> inplace = a;
        F::mulBatch(inplace.data(), inplace.data(), b.data(), kN, impl);
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(inplace[i], expect[i]) << "impl=" << (int)impl
                                             << " i=" << i;
    }

    // The generic helper routes prime fields through the same kernel.
    std::vector<F> generic(kN);
    mulBatch(generic.data(), a.data(), b.data(), kN);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(generic[i], expect[i]);
}

TEST(MulBatch, ExtensionFieldFallback)
{
    using F2 = Bn254Tower::Fq2;
    Rng rng(8);
    constexpr std::size_t kN = 9;
    std::vector<F2> a(kN), b(kN), out(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        a[i] = F2::random(rng);
        b[i] = F2::random(rng);
    }
    mulBatch(out.data(), a.data(), b.data(), kN);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(out[i], a[i] * b[i]);
}

TEST(FieldParams, ModulusProperties)
{
    // Both base fields are 3 mod 4 (so u^2 = -1 builds Fp2) and both
    // scalar fields have high two-adicity (so radix-2 NTT domains
    // exist for every circuit size the paper sweeps).
    EXPECT_EQ(bn254::Fq::kModulus.limbs[0] & 3, 3u);
    EXPECT_EQ(bls381::Fq::kModulus.limbs[0] & 3, 3u);

    auto two_adicity = [](auto m) {
        std::size_t s = 0;
        m.subInPlace(decltype(m)(1));
        while (!m.isOdd()) {
            m.shr1InPlace();
            ++s;
        }
        return s;
    };
    EXPECT_GE(two_adicity(bn254::Fr::kModulus), 28u);
    EXPECT_GE(two_adicity(bls381::Fr::kModulus), 32u);
}

TEST(FieldParams, MontgomeryConstants)
{
    // R * R^-1 = 1: one() converts back to integer 1.
    EXPECT_EQ(bn254::Fq::one().toBigInt(), BigInt<4>(1));
    EXPECT_EQ(bls381::Fq::one().toBigInt(), BigInt<6>(1));
    // n0 * p = -1 mod 2^64.
    EXPECT_EQ(bn254::Fq::kN0 * bn254::Fq::kModulus.limbs[0], ~(u64)0);
    EXPECT_EQ(bls381::Fq::kN0 * bls381::Fq::kModulus.limbs[0], ~(u64)0);
}

// ---------------------------------------------------------------------
// Tower field tests, typed over both towers.
// ---------------------------------------------------------------------

template <typename Tower>
class TowerTest : public ::testing::Test
{
};

using Towers = ::testing::Types<Bn254Tower, Bls381Tower>;
TYPED_TEST_SUITE(TowerTest, Towers);

TYPED_TEST(TowerTest, XiIsNotACube)
{
    // xi must be a cubic and quadratic non-residue in Fp2 for the
    // tower to be a field: check via xi^((p^2-1)/3) != 1 and
    // xi^((p^2-1)/2) != 1.
    using Tower = TypeParam;
    using Fq = typename Tower::Fq;
    const BigNum p = BigNum::fromBigInt(Fq::kModulus);
    const BigNum p2m1 = p * p - BigNum(1);
    auto xi = Tower::xi();
    EXPECT_FALSE(fieldPow(xi, p2m1 / BigNum(3)) == Tower::Fq2::one());
    EXPECT_FALSE(fieldPow(xi, p2m1 / BigNum(2)) == Tower::Fq2::one());
}

TYPED_TEST(TowerTest, Fp2FieldAxioms)
{
    using Fq2 = typename TypeParam::Fq2;
    Rng rng(10);
    for (int i = 0; i < 16; ++i) {
        Fq2 a = Fq2::random(rng);
        Fq2 b = Fq2::random(rng);
        Fq2 c = Fq2::random(rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a.squared(), a * a);
        if (!a.isZero()) {
            EXPECT_EQ(a * a.inverse(), Fq2::one());
        }
    }
}

TYPED_TEST(TowerTest, Fp6FieldAxioms)
{
    using F = Fp6<TypeParam>;
    Rng rng(11);
    for (int i = 0; i < 8; ++i) {
        F a = F::random(rng);
        F b = F::random(rng);
        F c = F::random(rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ((a * b) * c, a * (b * c));
        if (!a.isZero()) {
            EXPECT_EQ(a * a.inverse(), F::one());
        }
    }
}

TYPED_TEST(TowerTest, Fp6MulByVMatchesExplicitV)
{
    using F = Fp6<TypeParam>;
    using Fq2 = typename TypeParam::Fq2;
    Rng rng(12);
    F a = F::random(rng);
    F v(Fq2::zero(), Fq2::one(), Fq2::zero());
    EXPECT_EQ(a.mulByV(), a * v);
}

TYPED_TEST(TowerTest, Fp12FieldAxioms)
{
    using F = Fp12<TypeParam>;
    Rng rng(13);
    for (int i = 0; i < 4; ++i) {
        F a = F::random(rng);
        F b = F::random(rng);
        F c = F::random(rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a.squared(), a * a);
        if (!a.isZero()) {
            EXPECT_EQ(a * a.inverse(), F::one());
        }
    }
}

TYPED_TEST(TowerTest, FrobeniusIsPPower)
{
    using F = Fp12<TypeParam>;
    using Fq = typename TypeParam::Fq;
    Rng rng(14);
    F a = F::random(rng);
    const BigNum p = BigNum::fromBigInt(Fq::kModulus);
    EXPECT_EQ(a.frobenius(), a.pow(p));
}

TYPED_TEST(TowerTest, FrobeniusOrderTwelve)
{
    using F = Fp12<TypeParam>;
    Rng rng(15);
    F a = F::random(rng);
    EXPECT_EQ(a.frobenius(12), a);
    EXPECT_EQ(a.frobenius(6), a.conjugate());
}

} // namespace
} // namespace zkp::ff
