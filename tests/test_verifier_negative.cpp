/**
 * @file
 * Deterministic verifier negative paths (tier 1): a valid proof is
 * produced once per scheme and curve, then every documented way of
 * presenting it wrongly — wrong public inputs, swapped elements,
 * identity points, truncated or trailing bytes — must be rejected.
 * The randomized/mutational counterpart lives in tests/prop/.
 */

#include <gtest/gtest.h>

#include "r1cs/circuits.h"
#include "snark/curve.h"
#include "snark/groth16.h"
#include "snark/plonk.h"
#include "snark/serialize.h"

namespace zkp {
namespace {

/** Per-curve Groth16 fixture, built once and shared by all tests. */
template <typename Curve>
struct G16State
{
    using Fr = typename Curve::Fr;
    using Scheme = snark::Groth16<Curve>;

    typename Scheme::Keypair kp;
    typename Scheme::Proof proof;
    Fr y;

    static const G16State&
    get()
    {
        static const G16State s;
        return s;
    }

  private:
    G16State()
    {
        r1cs::ExponentiationCircuit<Fr> circ(4);
        const auto cs = circ.builder.compile();
        Rng rng(0x4e454741u);
        kp = Scheme::setup(cs, rng);
        const Fr x = Fr::fromU64(11);
        y = circ.evaluate(x);
        std::vector<Fr> z{Fr::one(), y, x};
        Fr acc = x;
        for (std::size_t i = 1; i < circ.exponent; ++i) {
            acc *= x;
            z.push_back(acc);
        }
        proof = Scheme::prove(kp.pk, cs, z, rng);
    }
};

template <typename CurveT>
class Groth16Negative : public ::testing::Test
{
  protected:
    using Curve = CurveT;
    using Scheme = snark::Groth16<Curve>;

    void
    SetUp() override
    {
        const auto& s = G16State<Curve>::get();
        vk_ = &s.kp.vk;
        proof_ = s.proof;
        y_ = s.y;
        ASSERT_TRUE(Scheme::verify(*vk_, {y_}, proof_));
    }

    const typename Scheme::VerifyingKey* vk_ = nullptr;
    typename Scheme::Proof proof_;
    typename Curve::Fr y_;
};

using Curves = ::testing::Types<snark::Bn254, snark::Bls381>;
TYPED_TEST_SUITE(Groth16Negative, Curves);

TYPED_TEST(Groth16Negative, WrongPublicInputRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Groth16<TypeParam>;
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {this->y_ + Fr::one()},
                       this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {Fr::zero()}, this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {-this->y_}, this->proof_));
}

TYPED_TEST(Groth16Negative, SwappedProofElementsRejected)
{
    using Scheme = snark::Groth16<TypeParam>;
    auto p = this->proof_;
    std::swap(p.a, p.c); // both G1; a valid-looking but wrong proof
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, p));
}

TYPED_TEST(Groth16Negative, NegatedProofElementRejected)
{
    using Scheme = snark::Groth16<TypeParam>;
    auto p = this->proof_;
    p.a.y = -p.a.y; // still on curve and in subgroup
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, p));
}

TYPED_TEST(Groth16Negative, IdentityProofElementsRejected)
{
    using Curve = TypeParam;
    using Scheme = snark::Groth16<Curve>;
    using G1Affine = typename Curve::G1::Affine;
    using G2Affine = typename Curve::G2::Affine;

    // verify() must not accept (or crash on) degenerate pairing
    // inputs; the deserializer refuses them outright.
    auto pa = this->proof_;
    pa.a = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pa));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pa))
                     .has_value());

    auto pb = this->proof_;
    pb.b = G2Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pb));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pb))
                     .has_value());

    auto pc = this->proof_;
    pc.c = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pc));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pc))
                     .has_value());
}

TYPED_TEST(Groth16Negative, TruncatedAndPaddedBytesRejected)
{
    using Curve = TypeParam;
    const auto bytes = snark::serializeProof<Curve>(this->proof_);

    EXPECT_FALSE(snark::deserializeProof<Curve>({}).has_value());
    for (const std::size_t n :
         {std::size_t(1), bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_FALSE(snark::deserializeProof<Curve>(prefix)
                         .has_value())
            << "prefix length " << n;
    }
    auto padded = bytes;
    padded.push_back(0x00);
    EXPECT_FALSE(snark::deserializeProof<Curve>(padded).has_value());
}

// ---------------------------------------------------------------------
// PlonK
// ---------------------------------------------------------------------

/** Per-curve PlonK fixture, built once and shared by all tests. */
template <typename Curve>
struct PlonkState
{
    using Fr = typename Curve::Fr;
    using Scheme = snark::Plonk<Curve>;

    typename Scheme::Keypair kp;
    typename Scheme::Proof proof;
    std::vector<Fr> pub;

    static const PlonkState&
    get()
    {
        static const PlonkState s;
        return s;
    }

  private:
    PlonkState()
    {
        snark::PlonkExponentiation<Fr> circ(4);
        Rng rng(0x504c4e4bu);
        kp = Scheme::setup(circ.builder, rng);
        const auto values = circ.assign(Fr::fromU64(6));
        pub = {values[circ.yVar]};
        proof = Scheme::prove(kp.pk, values, pub, rng);
    }
};

template <typename CurveT>
class PlonkNegative : public ::testing::Test
{
  protected:
    using Curve = CurveT;
    using Fr = typename Curve::Fr;
    using Scheme = snark::Plonk<Curve>;

    void
    SetUp() override
    {
        const auto& s = PlonkState<Curve>::get();
        vk_ = &s.kp.vk;
        proof_ = s.proof;
        pub_ = s.pub;
        ASSERT_TRUE(Scheme::verify(*vk_, pub_, proof_));
    }

    const typename Scheme::VerifyingKey* vk_ = nullptr;
    typename Scheme::Proof proof_;
    std::vector<Fr> pub_;
};

TYPED_TEST_SUITE(PlonkNegative, Curves);

TYPED_TEST(PlonkNegative, WrongPublicInputRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Plonk<TypeParam>;
    EXPECT_FALSE(Scheme::verify((*this->vk_),
                                {this->pub_[0] + Fr::one()},
                                this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {Fr::zero()}, this->proof_));
}

TYPED_TEST(PlonkNegative, TamperedEvaluationRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Plonk<TypeParam>;
    for (const std::size_t i : {std::size_t(0), std::size_t(12)}) {
        auto p = this->proof_;
        p.evals[i] += Fr::one();
        EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p))
            << "eval " << i;
    }
    auto p = this->proof_;
    p.zOmega += Fr::one();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p));
}

TYPED_TEST(PlonkNegative, SwappedProofElementsRejected)
{
    using Scheme = snark::Plonk<TypeParam>;
    auto p1 = this->proof_;
    std::swap(p1.a, p1.b);
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p1));

    auto p2 = this->proof_;
    std::swap(p2.wZeta, p2.wZetaOmega);
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p2));
}

TYPED_TEST(PlonkNegative, IdentityCommitmentsRejected)
{
    using Curve = TypeParam;
    using Scheme = snark::Plonk<Curve>;
    using G1Affine = typename Curve::G1::Affine;

    auto p1 = this->proof_;
    p1.z = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p1));

    auto p2 = this->proof_;
    p2.t = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p2));

    auto p3 = this->proof_;
    p3.wZeta = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p3));
}

TYPED_TEST(PlonkNegative, TruncatedBytesRejected)
{
    using Curve = TypeParam;
    const auto bytes =
        snark::serializePlonkProof<Curve>(this->proof_);
    const auto parsed = snark::deserializePlonkProof<Curve>(bytes);
    ASSERT_TRUE(parsed.has_value());

    EXPECT_FALSE(snark::deserializePlonkProof<Curve>({}).has_value());
    for (const std::size_t n :
         {std::size_t(1), bytes.size() / 3, bytes.size() - 1}) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_FALSE(snark::deserializePlonkProof<Curve>(prefix)
                         .has_value())
            << "prefix length " << n;
    }
}

} // namespace
} // namespace zkp
