/**
 * @file
 * Deterministic verifier negative paths (tier 1): a valid proof is
 * produced once per scheme and curve, then every documented way of
 * presenting it wrongly — wrong public inputs, swapped elements,
 * identity points, truncated or trailing bytes — must be rejected.
 * The randomized/mutational counterpart lives in tests/prop/.
 */

#include <gtest/gtest.h>

#include "r1cs/circuits.h"
#include "r1cs/gadgets/sha256.h"
#include "r1cs/witness.h"
#include "r1cs/zoo.h"
#include "snark/curve.h"
#include "snark/groth16.h"
#include "snark/plonk.h"
#include "snark/plonk_from_r1cs.h"
#include "snark/serialize.h"
#include "stark/air.h"
#include "stark/serialize.h"
#include "stark/stark.h"

namespace zkp {
namespace {

/** Per-curve Groth16 fixture, built once and shared by all tests. */
template <typename Curve>
struct G16State
{
    using Fr = typename Curve::Fr;
    using Scheme = snark::Groth16<Curve>;

    typename Scheme::Keypair kp;
    typename Scheme::Proof proof;
    Fr y;

    static const G16State&
    get()
    {
        static const G16State s;
        return s;
    }

  private:
    G16State()
    {
        r1cs::ExponentiationCircuit<Fr> circ(4);
        const auto cs = circ.builder.compile();
        Rng rng(0x4e454741u);
        kp = Scheme::setup(cs, rng);
        const Fr x = Fr::fromU64(11);
        y = circ.evaluate(x);
        std::vector<Fr> z{Fr::one(), y, x};
        Fr acc = x;
        for (std::size_t i = 1; i < circ.exponent; ++i) {
            acc *= x;
            z.push_back(acc);
        }
        proof = Scheme::prove(kp.pk, cs, z, rng);
    }
};

template <typename CurveT>
class Groth16Negative : public ::testing::Test
{
  protected:
    using Curve = CurveT;
    using Scheme = snark::Groth16<Curve>;

    void
    SetUp() override
    {
        const auto& s = G16State<Curve>::get();
        vk_ = &s.kp.vk;
        proof_ = s.proof;
        y_ = s.y;
        ASSERT_TRUE(Scheme::verify(*vk_, {y_}, proof_));
    }

    const typename Scheme::VerifyingKey* vk_ = nullptr;
    typename Scheme::Proof proof_;
    typename Curve::Fr y_;
};

using Curves = ::testing::Types<snark::Bn254, snark::Bls381>;
TYPED_TEST_SUITE(Groth16Negative, Curves);

TYPED_TEST(Groth16Negative, WrongPublicInputRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Groth16<TypeParam>;
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {this->y_ + Fr::one()},
                       this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {Fr::zero()}, this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {-this->y_}, this->proof_));
}

TYPED_TEST(Groth16Negative, SwappedProofElementsRejected)
{
    using Scheme = snark::Groth16<TypeParam>;
    auto p = this->proof_;
    std::swap(p.a, p.c); // both G1; a valid-looking but wrong proof
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, p));
}

TYPED_TEST(Groth16Negative, NegatedProofElementRejected)
{
    using Scheme = snark::Groth16<TypeParam>;
    auto p = this->proof_;
    p.a.y = -p.a.y; // still on curve and in subgroup
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, p));
}

TYPED_TEST(Groth16Negative, IdentityProofElementsRejected)
{
    using Curve = TypeParam;
    using Scheme = snark::Groth16<Curve>;
    using G1Affine = typename Curve::G1::Affine;
    using G2Affine = typename Curve::G2::Affine;

    // verify() must not accept (or crash on) degenerate pairing
    // inputs; the deserializer refuses them outright.
    auto pa = this->proof_;
    pa.a = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pa));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pa))
                     .has_value());

    auto pb = this->proof_;
    pb.b = G2Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pb));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pb))
                     .has_value());

    auto pc = this->proof_;
    pc.c = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), {this->y_}, pc));
    EXPECT_FALSE(snark::deserializeProof<Curve>(
                     snark::serializeProof<Curve>(pc))
                     .has_value());
}

TYPED_TEST(Groth16Negative, TruncatedAndPaddedBytesRejected)
{
    using Curve = TypeParam;
    const auto bytes = snark::serializeProof<Curve>(this->proof_);

    EXPECT_FALSE(snark::deserializeProof<Curve>({}).has_value());
    for (const std::size_t n :
         {std::size_t(1), bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_FALSE(snark::deserializeProof<Curve>(prefix)
                         .has_value())
            << "prefix length " << n;
    }
    auto padded = bytes;
    padded.push_back(0x00);
    EXPECT_FALSE(snark::deserializeProof<Curve>(padded).has_value());
}

// ---------------------------------------------------------------------
// PlonK
// ---------------------------------------------------------------------

/** Per-curve PlonK fixture, built once and shared by all tests. */
template <typename Curve>
struct PlonkState
{
    using Fr = typename Curve::Fr;
    using Scheme = snark::Plonk<Curve>;

    typename Scheme::Keypair kp;
    typename Scheme::Proof proof;
    std::vector<Fr> pub;

    static const PlonkState&
    get()
    {
        static const PlonkState s;
        return s;
    }

  private:
    PlonkState()
    {
        snark::PlonkExponentiation<Fr> circ(4);
        Rng rng(0x504c4e4bu);
        kp = Scheme::setup(circ.builder, rng);
        const auto values = circ.assign(Fr::fromU64(6));
        pub = {values[circ.yVar]};
        proof = Scheme::prove(kp.pk, values, pub, rng);
    }
};

template <typename CurveT>
class PlonkNegative : public ::testing::Test
{
  protected:
    using Curve = CurveT;
    using Fr = typename Curve::Fr;
    using Scheme = snark::Plonk<Curve>;

    void
    SetUp() override
    {
        const auto& s = PlonkState<Curve>::get();
        vk_ = &s.kp.vk;
        proof_ = s.proof;
        pub_ = s.pub;
        ASSERT_TRUE(Scheme::verify(*vk_, pub_, proof_));
    }

    const typename Scheme::VerifyingKey* vk_ = nullptr;
    typename Scheme::Proof proof_;
    std::vector<Fr> pub_;
};

TYPED_TEST_SUITE(PlonkNegative, Curves);

TYPED_TEST(PlonkNegative, WrongPublicInputRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Plonk<TypeParam>;
    EXPECT_FALSE(Scheme::verify((*this->vk_),
                                {this->pub_[0] + Fr::one()},
                                this->proof_));
    EXPECT_FALSE(
        Scheme::verify((*this->vk_), {Fr::zero()}, this->proof_));
}

TYPED_TEST(PlonkNegative, TamperedEvaluationRejected)
{
    using Fr = typename TypeParam::Fr;
    using Scheme = snark::Plonk<TypeParam>;
    for (const std::size_t i : {std::size_t(0), std::size_t(12)}) {
        auto p = this->proof_;
        p.evals[i] += Fr::one();
        EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p))
            << "eval " << i;
    }
    auto p = this->proof_;
    p.zOmega += Fr::one();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p));
}

TYPED_TEST(PlonkNegative, SwappedProofElementsRejected)
{
    using Scheme = snark::Plonk<TypeParam>;
    auto p1 = this->proof_;
    std::swap(p1.a, p1.b);
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p1));

    auto p2 = this->proof_;
    std::swap(p2.wZeta, p2.wZetaOmega);
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p2));
}

TYPED_TEST(PlonkNegative, IdentityCommitmentsRejected)
{
    using Curve = TypeParam;
    using Scheme = snark::Plonk<Curve>;
    using G1Affine = typename Curve::G1::Affine;

    auto p1 = this->proof_;
    p1.z = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p1));

    auto p2 = this->proof_;
    p2.t = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p2));

    auto p3 = this->proof_;
    p3.wZeta = G1Affine();
    EXPECT_FALSE(Scheme::verify((*this->vk_), this->pub_, p3));
}

TYPED_TEST(PlonkNegative, TruncatedBytesRejected)
{
    using Curve = TypeParam;
    const auto bytes =
        snark::serializePlonkProof<Curve>(this->proof_);
    const auto parsed = snark::deserializePlonkProof<Curve>(bytes);
    ASSERT_TRUE(parsed.has_value());

    EXPECT_FALSE(snark::deserializePlonkProof<Curve>({}).has_value());
    for (const std::size_t n :
         {std::size_t(1), bytes.size() / 3, bytes.size() - 1}) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_FALSE(snark::deserializePlonkProof<Curve>(prefix)
                         .has_value())
            << "prefix length " << n;
    }
}

// ---------------------------------------------------------------------
// Circuit zoo (bn254): the same deterministic negative paths against
// realistic circuits — a wrong public digest at proof level under
// both schemes, and tampered witnesses that must be unsatisfiable.
// The randomized counterparts live in tests/prop/prop_mutation.cpp.
// ---------------------------------------------------------------------

using ZooCurve = snark::Bn254;
using ZooFr = ZooCurve::Fr;

/** Shared Poseidon (scale 1) state: compiled circuit, assignment and
 *  a Groth16 proof, built once. */
struct ZooPoseidonState
{
    r1cs::R1cs<ZooFr> cs;
    std::vector<ZooFr> z, pub;
    snark::Groth16<ZooCurve>::Keypair kp;
    snark::Groth16<ZooCurve>::Proof proof;

    static const ZooPoseidonState&
    get()
    {
        static const ZooPoseidonState s;
        return s;
    }

  private:
    ZooPoseidonState()
    {
        const auto* e = r1cs::zoo::find<ZooFr>("poseidon");
        auto builder = e->build(1);
        cs = builder.compile();
        Rng rng(0x5a4e4547u);
        const auto w = e->sample(1, rng);
        pub = w.pub;
        z = r1cs::WitnessCalculator<ZooFr>(builder.witnessProgram())
                .compute(w.pub, w.priv);
        kp = snark::Groth16<ZooCurve>::setup(cs, rng);
        proof = snark::Groth16<ZooCurve>::prove(kp.pk, cs, z, rng);
    }
};

TEST(ZooNegative, PoseidonGroth16WrongDigestRejected)
{
    using Scheme = snark::Groth16<ZooCurve>;
    const auto& s = ZooPoseidonState::get();
    ASSERT_TRUE(Scheme::verify(s.kp.vk, s.pub, s.proof));
    EXPECT_FALSE(
        Scheme::verify(s.kp.vk, {s.pub[0] + ZooFr::one()}, s.proof));
    EXPECT_FALSE(Scheme::verify(s.kp.vk, {ZooFr::zero()}, s.proof));
    EXPECT_FALSE(Scheme::verify(s.kp.vk, {-s.pub[0]}, s.proof));
}

TEST(ZooNegative, PoseidonPlonkWrongDigestRejected)
{
    using Scheme = snark::Plonk<ZooCurve>;
    const auto& s = ZooPoseidonState::get();
    snark::PlonkFromR1cs<ZooFr> lowered(s.cs);
    Rng rng(0x5a4e4550u);
    const auto kp = Scheme::setup(lowered.builder, rng);
    const auto pub = lowered.publicInputs(s.z);
    const auto proof =
        Scheme::prove(kp.pk, lowered.assign(s.z), pub, rng);
    ASSERT_TRUE(Scheme::verify(kp.vk, pub, proof));
    EXPECT_FALSE(
        Scheme::verify(kp.vk, {pub[0] + ZooFr::one()}, proof));
    EXPECT_FALSE(Scheme::verify(kp.vk, {ZooFr::zero()}, proof));
}

TEST(ZooNegative, Sha256FlippedMessageBitUnsatisfiable)
{
    using Circuit = r1cs::gadgets::Sha256Circuit<ZooFr>;
    const auto* e = r1cs::zoo::find<ZooFr>("sha256");
    auto builder = e->build(1);
    const auto cs = builder.compile();
    const r1cs::WitnessCalculator<ZooFr> calc(
        builder.witnessProgram());

    Rng rng(0x5a4e4553u);
    std::vector<r1cs::Sha256::Block> blocks(1);
    for (auto& word : blocks[0])
        word = (r1cs::Sha256::u32)rng.next();
    const auto pub = Circuit::publicInputs(blocks);
    ASSERT_TRUE(
        cs.isSatisfied(calc.compute(pub, Circuit::privateInputs(blocks))));

    // One flipped bit anywhere in the message must contradict the
    // pinned public digest.
    auto tampered = blocks;
    tampered[0][7] ^= 1u << 13;
    EXPECT_FALSE(cs.isSatisfied(
        calc.compute(pub, Circuit::privateInputs(tampered))));
}

TEST(ZooNegative, SchnorrTamperedWitnessUnsatisfiable)
{
    const auto* e = r1cs::zoo::find<ZooFr>("schnorr");
    auto builder = e->build(1);
    const auto cs = builder.compile();
    const r1cs::WitnessCalculator<ZooFr> calc(
        builder.witnessProgram());

    Rng rng(0x5a4e4554u);
    const auto w = e->sample(1, rng);
    ASSERT_TRUE(cs.isSatisfied(calc.compute(w.pub, w.priv)));

    // Perturbing any private input (signature material) must break
    // satisfiability; same for the public statement.
    auto badPriv = w.priv;
    badPriv[0] += ZooFr::one();
    EXPECT_FALSE(cs.isSatisfied(calc.compute(w.pub, badPriv)));

    auto badPub = w.pub;
    badPub[0] += ZooFr::one();
    EXPECT_FALSE(cs.isSatisfied(calc.compute(badPub, w.priv)));
}

// ---------------------------------------------------------------------
// STARK: the transparent verifier's negative paths. Tampering happens
// at proof-struct level (so it reaches the verifier, not just the
// deserializer) and at byte level (so the hardened deserializer's
// rejections are pinned too). Small params keep the fixture fast;
// 64 steps gives 3 FRI folds, i.e. two committed layers — every proof
// component is populated.
// ---------------------------------------------------------------------

stark::StarkParams
starkTestParams()
{
    stark::StarkParams p;
    p.queries = 10;
    p.grindBits = 4;
    return p;
}

/** Shared fixture state: one valid Fibonacci proof, built once. */
struct StarkState
{
    stark::FibonacciAir air;
    stark::StarkProof proof;

    static const StarkState&
    get()
    {
        static const StarkState s;
        return s;
    }

  private:
    StarkState()
        : air(64, stark::Gl::fromU64(1), stark::Gl::fromU64(1)),
          proof(stark::prove(air, starkTestParams(), 1))
    {
    }
};

class StarkNegative : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto& s = StarkState::get();
        air_ = &s.air;
        proof_ = s.proof;
        ASSERT_TRUE(
            stark::verify(*air_, starkTestParams(), proof_));
    }

    const stark::FibonacciAir* air_ = nullptr;
    stark::StarkProof proof_;
};

TEST_F(StarkNegative, WrongStatementRejected)
{
    // Same shape, different public inputs: the Fiat-Shamir transcript
    // diverges at the statement absorption, so every challenge — and
    // with it the grind and the query positions — stops matching.
    const stark::FibonacciAir other(64, stark::Gl::fromU64(2),
                                    stark::Gl::fromU64(3));
    EXPECT_FALSE(stark::verify(other, starkTestParams(), proof_));

    // Same publics, different params (query count is part of the
    // statement seed and the shape check).
    auto params = starkTestParams();
    params.queries = 11;
    EXPECT_FALSE(stark::verify(*air_, params, proof_));
}

TEST_F(StarkNegative, TamperedMerklePathRejected)
{
    // Flip one byte of one trace-opening sibling: the recomputed root
    // cannot match the committed one.
    auto p1 = proof_;
    ASSERT_FALSE(p1.queries[0].trace[0].path.siblings.empty());
    p1.queries[0].trace[0].path.siblings[0][5] ^= 0x40;
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p1));

    // Same for a committed FRI layer's path.
    auto p2 = proof_;
    ASSERT_FALSE(p2.queries[0].layers.empty());
    ASSERT_FALSE(p2.queries[0].layers[0].p0.siblings.empty());
    p2.queries[0].layers[0].p0.siblings[0][0] ^= 0x01;
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p2));

    // A tampered trace root invalidates every path at once (and
    // shifts all challenges).
    auto p3 = proof_;
    p3.traceRoot[31] ^= 0x80;
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p3));

    // Tampering a FRI root re-seeds the later fold challenges.
    auto p4 = proof_;
    ASSERT_FALSE(p4.friRoots.empty());
    p4.friRoots[0][0] ^= 0x01;
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p4));
}

TEST_F(StarkNegative, OutOfDomainTraceValueRejected)
{
    // Perturbing an opened trace cell breaks its leaf hash against
    // the authentication path — a forged low-degree extension value
    // cannot ride a valid opening.
    auto p = proof_;
    p.queries[0].trace[0].row[0] += stark::Gl::one();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p));

    auto p2 = proof_;
    p2.queries[3].trace[2].row[1] = stark::Gl::zero();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p2));
}

TEST_F(StarkNegative, WrongFriFoldRejected)
{
    // A layer value inconsistent with the previous layer's fold must
    // fail even if we can't fix up its Merkle path: both the path
    // check and the fold-consistency check guard it.
    auto p1 = proof_;
    p1.queries[0].layers[0].v0 += stark::Gl::one();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p1));

    auto p2 = proof_;
    p2.queries[0].layers[0].v1 += stark::Gl::one();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p2));

    // Tampered remainder coefficients change the channel (they are
    // absorbed before the grind) and the final evaluation check.
    auto p3 = proof_;
    p3.remainder[0] += stark::Gl::one();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p3));
}

TEST_F(StarkNegative, TamperedPowNonceRejected)
{
    // With 4 grind bits a random wrong nonce passes the leading-zero
    // check 1/16 of the time but then derives different query indices
    // — so iterate a few nonces and require rejection for all.
    for (const u64 delta : {1, 2, 3, 4, 5}) {
        auto p = proof_;
        p.powNonce += delta;
        EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p))
            << "nonce delta " << delta;
    }
}

TEST_F(StarkNegative, ShapeViolationsRejected)
{
    auto p1 = proof_;
    p1.steps *= 2; // shape echo disagrees with the AIR
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p1));

    auto p2 = proof_;
    p2.queries.pop_back();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p2));

    auto p3 = proof_;
    p3.queries[0].trace.pop_back();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p3));

    auto p4 = proof_;
    p4.remainder.resize(p4.remainder.size() - 1);
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p4));

    auto p5 = proof_;
    p5.friRoots.pop_back();
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p5));

    auto p6 = proof_;
    p6.queries[0].trace[0].row.push_back(stark::Gl::one());
    EXPECT_FALSE(stark::verify(*air_, starkTestParams(), p6));
}

TEST_F(StarkNegative, TruncatedAndPaddedBytesRejected)
{
    const auto bytes = stark::serializeProof(proof_);
    ASSERT_TRUE(stark::deserializeProof(bytes).has_value());

    EXPECT_FALSE(stark::deserializeProof({}).has_value());
    for (const std::size_t n :
         {std::size_t(1), std::size_t(7), bytes.size() / 2,
          bytes.size() - 1}) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_FALSE(stark::deserializeProof(prefix).has_value())
            << "prefix length " << n;
    }
    auto padded = bytes;
    padded.push_back(0x00);
    EXPECT_FALSE(stark::deserializeProof(padded).has_value());

    auto badMagic = bytes;
    badMagic[0] ^= 0xff;
    EXPECT_FALSE(stark::deserializeProof(badMagic).has_value());
}

TEST_F(StarkNegative, NonCanonicalFieldEncodingRejected)
{
    // Overwrite the first remainder coefficient (its offset follows
    // from the documented layout: magic + steps + columns + traceRoot
    // + friRootCount + roots + remainderCount) with p itself — an
    // 8-byte value that is not a canonical Goldilocks element. The
    // hardened reader must refuse it.
    auto bytes = stark::serializeProof(proof_);
    const std::size_t off = 8 + 8 + 8 + 32 + 4 +
                            32 * proof_.friRoots.size() + 4;
    ASSERT_LE(off + 8, bytes.size());
    const u64 p = stark::Gl::kP;
    for (std::size_t i = 0; i < 8; ++i)
        bytes[off + i] = (std::uint8_t)(p >> (8 * i));
    EXPECT_FALSE(stark::deserializeProof(bytes).has_value());

    // All-ones (2^64 - 1) is also non-canonical.
    for (std::size_t i = 0; i < 8; ++i)
        bytes[off + i] = 0xff;
    EXPECT_FALSE(stark::deserializeProof(bytes).has_value());
}

TEST_F(StarkNegative, MimcWrongOutputRejected)
{
    // Degree-3 AIR: a proof for input 7 must not verify as a
    // statement about input 8 (different output boundary + publics).
    const stark::MimcAir good(64, stark::Gl::fromU64(7));
    const auto proof = stark::prove(good, starkTestParams(), 1);
    ASSERT_TRUE(stark::verify(good, starkTestParams(), proof));
    const stark::MimcAir bad(64, stark::Gl::fromU64(8));
    EXPECT_FALSE(stark::verify(bad, starkTestParams(), proof));
}

} // namespace
} // namespace zkp
