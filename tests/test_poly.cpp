/**
 * @file
 * NTT, evaluation-domain and polynomial tests over both scalar fields.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ff/params.h"
#include "poly/domain.h"
#include "poly/polynomial.h"

namespace zkp::poly {
namespace {

template <typename Fr>
class DomainTest : public ::testing::Test
{
};

using ScalarFields = ::testing::Types<ff::bn254::Fr, ff::bls381::Fr>;
TYPED_TEST_SUITE(DomainTest, ScalarFields);

TYPED_TEST(DomainTest, RootOfUnityOrders)
{
    using Fr = TypeParam;
    const auto& ta = TwoAdicity<Fr>::get();
    EXPECT_GE(ta.s, 28u);

    // rootOfUnity has order exactly 2^s.
    Fr w = ta.rootOfUnity;
    for (std::size_t i = 0; i + 1 < ta.s; ++i)
        w = w.squared();
    EXPECT_NE(w, Fr::one()); // order > 2^(s-1)
    EXPECT_EQ(w.squared(), Fr::one());

    // The coset shift is a genuine non-residue.
    EXPECT_EQ(ta.cosetShift.legendre(), -1);
}

TYPED_TEST(DomainTest, DomainOmegaOrder)
{
    using Fr = TypeParam;
    for (std::size_t n : {2u, 8u, 64u, 1024u}) {
        Domain<Fr> d(n);
        EXPECT_EQ(d.omega().pow((u64)n), Fr::one());
        EXPECT_NE(d.omega().pow((u64)(n / 2)), Fr::one());
        EXPECT_EQ(d.size(), n);
    }
}

TYPED_TEST(DomainTest, NttInverseRoundTrip)
{
    using Fr = TypeParam;
    Rng rng(41);
    for (std::size_t n : {1u, 2u, 16u, 256u}) {
        Domain<Fr> d(n);
        std::vector<Fr> v(n);
        for (auto& x : v)
            x = Fr::random(rng);
        auto w = v;
        d.ntt(w);
        d.intt(w);
        EXPECT_EQ(w, v) << "size " << n;
    }
}

TYPED_TEST(DomainTest, NttMatchesNaiveDft)
{
    using Fr = TypeParam;
    Rng rng(42);
    const std::size_t n = 16;
    Domain<Fr> d(n);
    std::vector<Fr> coeffs(n);
    for (auto& x : coeffs)
        x = Fr::random(rng);

    auto evals = coeffs;
    d.ntt(evals);
    for (std::size_t i = 0; i < n; ++i) {
        // Naive evaluation at omega^i.
        Fr x = d.element(i);
        Fr acc = Fr::zero();
        for (std::size_t j = n; j-- > 0;)
            acc = acc * x + coeffs[j];
        EXPECT_EQ(evals[i], acc) << "point " << i;
    }
}

TYPED_TEST(DomainTest, ThreadedNttMatchesSerial)
{
    using Fr = TypeParam;
    Rng rng(43);
    const std::size_t n = 512;
    Domain<Fr> d(n);
    std::vector<Fr> v(n);
    for (auto& x : v)
        x = Fr::random(rng);
    auto serial = v;
    auto threaded = v;
    d.ntt(serial, 1);
    d.ntt(threaded, 4);
    EXPECT_EQ(serial, threaded);
    d.intt(threaded, 3);
    EXPECT_EQ(threaded, v);
}

TYPED_TEST(DomainTest, CosetRoundTripAndDisjointness)
{
    using Fr = TypeParam;
    Rng rng(44);
    const std::size_t n = 64;
    Domain<Fr> d(n);
    std::vector<Fr> v(n);
    for (auto& x : v)
        x = Fr::random(rng);
    auto w = v;
    d.cosetNtt(w);
    d.cosetIntt(w);
    EXPECT_EQ(w, v);

    // Z(x) = x^n - 1 is nonzero (and constant) on the coset.
    EXPECT_FALSE(d.vanishingOnCoset().isZero());
    EXPECT_EQ(d.vanishingAt(d.cosetShift() * d.element(5)),
              d.vanishingOnCoset());
    // ... and zero on the domain itself.
    EXPECT_TRUE(d.vanishingAt(d.element(3)).isZero());
}

TYPED_TEST(DomainTest, LagrangeCoeffsInterpolate)
{
    using Fr = TypeParam;
    Rng rng(45);
    const std::size_t n = 32;
    Domain<Fr> d(n);

    // For a random polynomial P given by evaluations p_j, we must have
    // P(tau) = sum_j p_j L_j(tau).
    std::vector<Fr> evals(n);
    for (auto& x : evals)
        x = Fr::random(rng);
    Fr tau = Fr::random(rng);
    auto lag = d.lagrangeCoeffsAt(tau);

    Fr via_lagrange = Fr::zero();
    for (std::size_t j = 0; j < n; ++j)
        via_lagrange += evals[j] * lag[j];

    auto coeffs = evals;
    d.intt(coeffs);
    Fr direct = Fr::zero();
    for (std::size_t j = n; j-- > 0;)
        direct = direct * tau + coeffs[j];

    EXPECT_EQ(via_lagrange, direct);
}

TYPED_TEST(DomainTest, PolynomialMulMatchesSchoolbook)
{
    using Fr = TypeParam;
    Rng rng(46);
    // Force the NTT path with degree > 64 and compare against the
    // schoolbook path computed manually.
    std::vector<Fr> a(70), b(90);
    for (auto& x : a)
        x = Fr::random(rng);
    for (auto& x : b)
        x = Fr::random(rng);
    Polynomial<Fr> pa(a), pb(b);
    auto fast = pa * pb;

    std::vector<Fr> ref(a.size() + b.size() - 1, Fr::zero());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            ref[i + j] += a[i] * b[j];
    EXPECT_EQ(fast, Polynomial<Fr>(ref));
}

TYPED_TEST(DomainTest, PolynomialDivMod)
{
    using Fr = TypeParam;
    Rng rng(47);
    std::vector<Fr> a(25), b(7);
    for (auto& x : a)
        x = Fr::random(rng);
    for (auto& x : b)
        x = Fr::random(rng);
    Polynomial<Fr> pa(a), pb(b);
    auto [q, r] = pa.divMod(pb);
    EXPECT_EQ(q * pb + r, pa);
    EXPECT_LT(r.coeffs().size(), pb.coeffs().size());

    // Exact division: (pb * q2) / pb has zero remainder.
    auto prod = pb * q;
    auto [q2, r2] = prod.divMod(pb);
    EXPECT_EQ(q2, q);
    EXPECT_TRUE(r2.isZero());
}

TYPED_TEST(DomainTest, PolynomialEvaluate)
{
    using Fr = TypeParam;
    // p(x) = 3 + 2x + x^2 at x = 5 -> 38.
    Polynomial<Fr> p(std::vector<Fr>{Fr::fromU64(3), Fr::fromU64(2),
                                     Fr::fromU64(1)});
    EXPECT_EQ(p.evaluate(Fr::fromU64(5)), Fr::fromU64(38));
    EXPECT_EQ(p.degree(), 2u);
    EXPECT_TRUE(Polynomial<Fr>().isZero());
}

} // namespace
} // namespace zkp::poly
