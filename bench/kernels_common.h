/**
 * @file
 * Shared machinery of the kernel-baseline benches: the timed kernel
 * set (region entry, NTT, MSM, Groth16 prove), the BENCH_*.json
 * schema writer, and a small tolerant reader for existing baselines.
 *
 * bench_kernels emits a fresh baseline; bench_compare reruns the same
 * kernels against a stored baseline and fails on regression, so the
 * repo accumulates a perf trajectory instead of single snapshots
 * (docs/PERFORMANCE.md describes the workflow).
 */

#ifndef ZKP_BENCH_KERNELS_COMMON_H
#define ZKP_BENCH_KERNELS_COMMON_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "ec/msm.h"
#include "obs/memprof.h"
#include "poly/domain.h"

namespace zkp::bench {

/**
 * One timed kernel: identity plus mean/min-of-repeats seconds and the
 * memory footprint fields the mem gate compares (docs/PERFORMANCE.md).
 * peakRssBytes is the process high-water mark (VmHWM) after the
 * kernel ran — monotonic, so it reads as "footprint ceiling once this
 * point of the canonical kernel sequence is reached". allocBytes is
 * the mean per-repeat bytes allocated on the timing thread, nonzero
 * only under ZKP_MEMPROF=1 (parallelFor worker allocations are not
 * attributed — same caveat as the serve lanes).
 */
struct KernelEntry
{
    std::string name;
    std::size_t n = 0;
    std::size_t threads = 1;
    unsigned repeats = 1;
    double secondsMean = 0;
    double secondsMin = 0;
    std::uint64_t peakRssBytes = 0;
    std::uint64_t allocBytes = 0;
};

inline double
kernelNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Time fn() `repeats` times; record mean and min. */
template <typename Fn>
KernelEntry
timeKernel(const std::string& name, std::size_t n, std::size_t threads,
           Fn&& fn)
{
    KernelEntry e;
    e.name = name;
    e.n = n;
    e.threads = threads;
    e.repeats = repeats();
    const bool mem = obs::memprof::tracking();
    const std::uint64_t alloc0 =
        mem ? obs::memprof::threadStats().allocBytes : 0;
    double sum = 0, best = 0;
    for (unsigned r = 0; r < e.repeats; ++r) {
        const double t0 = kernelNow();
        fn();
        const double dt = kernelNow() - t0;
        sum += dt;
        if (r == 0 || dt < best)
            best = dt;
    }
    e.secondsMean = sum / e.repeats;
    e.secondsMin = best;
    e.peakRssBytes = obs::memprof::peakRssBytes();
    if (mem)
        e.allocBytes = (obs::memprof::threadStats().allocBytes -
                        alloc0) /
                       e.repeats;
    std::printf("  %-28s n=%-8zu threads=%zu  %.6fs (min %.6fs)\n",
                e.name.c_str(), e.n, e.threads, e.secondsMean,
                e.secondsMin);
    std::fflush(stdout);
    return e;
}

/**
 * Run the canonical kernel set (the entries BENCH_kernels.json pins):
 * pool vs spawn region entry, single/multi-thread NTT and MSM, and
 * the end-to-end Groth16 proving stage.
 */
inline std::vector<KernelEntry>
runKernelEntries(std::size_t log_n, std::size_t threads)
{
    std::vector<KernelEntry> entries;

    // Region-entry overhead: pool vs per-region thread spawn. 1000
    // near-empty regions isolate the fork-join cost itself.
    {
        const std::size_t regions = 1000;
        std::vector<u64> sink(threads, 0);
        parallelFor(1024, threads,
                    [](std::size_t, std::size_t, std::size_t) {});
        entries.push_back(timeKernel(
            "region_overhead_pool", regions, threads, [&] {
                for (std::size_t r = 0; r < regions; ++r)
                    parallelFor(1024, threads,
                                [&](std::size_t slot, std::size_t b,
                                    std::size_t e) {
                                    sink[slot] += e - b;
                                });
            }));
        entries.push_back(timeKernel(
            "region_overhead_spawn", regions, threads, [&] {
                for (std::size_t r = 0; r < regions; ++r) {
                    const std::size_t n = 1024;
                    const std::size_t per =
                        (n + threads - 1) / threads;
                    std::vector<std::thread> ts;
                    for (std::size_t t = 0; t < threads; ++t) {
                        const std::size_t b = t * per;
                        const std::size_t e =
                            b + per < n ? b + per : n;
                        ts.emplace_back(
                            [&, t, b, e] { sink[t] += e - b; });
                    }
                    for (auto& t : ts)
                        t.join();
                }
            }));
    }

    // NTT: one forward transform per timing (twiddles cached after
    // the first, which is the steady state a prove sees).
    {
        using Fr = ff::bn254::Fr;
        const std::size_t n = std::size_t(1) << 14;
        poly::Domain<Fr> dom(n);
        Rng rng(11);
        std::vector<Fr> v(n);
        for (auto& x : v)
            x = Fr::random(rng);
        dom.ntt(v, 1); // build the twiddle cache outside the clock
        for (std::size_t t : {std::size_t(1), threads})
            entries.push_back(
                timeKernel("ntt_forward", n, t, [&] { dom.ntt(v, t); }));
    }

    // MSM: signed-window Pippenger at a mid sweep size.
    {
        using G1 = ec::Bn254G1;
        using Fr = G1::Scalar;
        const std::size_t n = std::size_t(1) << 13;
        Rng rng(12);
        G1::Jacobian g{G1::generator()};
        std::vector<G1::Affine> pts;
        std::vector<Fr::Repr> scalars;
        for (std::size_t i = 0; i < n; ++i) {
            pts.push_back(
                g.mulScalar(rng.nextBelow(1 << 20) + 1).toAffine());
            scalars.push_back(Fr::random(rng).toBigInt());
        }
        for (std::size_t t : {std::size_t(1), threads})
            entries.push_back(timeKernel("msm_pippenger", n, t, [&] {
                auto p = ec::msmCurve<G1>(pts.data(), scalars.data(),
                                          n, t);
                (void)p;
            }));
    }

    // End-to-end proving stage (the acceptance gate: prove at 2^16
    // with 8 threads). StageRunner caches prerequisites, so repeats
    // time only the proving stage.
    {
        core::StageRunner<snark::Bn254> runner(std::size_t(1) << log_n);
        runner.run(core::Stage::Witness, threads); // warm prerequisites
        entries.push_back(timeKernel(
            "groth16_prove", std::size_t(1) << log_n, threads, [&] {
                auto r = runner.run(core::Stage::Proving, threads);
                (void)r;
            }));
    }

    return entries;
}

inline void
kernelJsonEscape(std::string& out, const std::string& s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

/** Render entries in the BENCH_kernels.json schema. */
inline std::string
kernelEntriesJson(
    const std::vector<KernelEntry>& entries,
    const std::vector<std::pair<std::string, std::string>>& notes)
{
    std::string json = "{\n  \"bench\": \"bench_kernels\",\n";
    json += "  \"notes\": {";
    for (std::size_t i = 0; i < notes.size(); ++i) {
        json += i ? ", \"" : "\"";
        kernelJsonEscape(json, notes[i].first);
        json += "\": \"";
        kernelJsonEscape(json, notes[i].second);
        json += "\"";
    }
    json += "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"n\": %zu, "
                      "\"threads\": %zu, \"repeats\": %u, "
                      "\"seconds_mean\": %.6f, \"seconds_min\": %.6f",
                      e.name.c_str(), e.n, e.threads, e.repeats,
                      e.secondsMean, e.secondsMin);
        json += buf;
        // Memory fields are emitted only when measured so baselines
        // from machines without /proc (or pre-mem baselines) stay
        // byte-identical to the old schema.
        if (e.peakRssBytes || e.allocBytes) {
            std::snprintf(buf, sizeof(buf),
                          ", \"peak_rss_bytes\": %llu, "
                          "\"alloc_bytes\": %llu",
                          (unsigned long long)e.peakRssBytes,
                          (unsigned long long)e.allocBytes);
            json += buf;
        }
        json += i + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  ]\n}\n";
    return json;
}

/** Write @p json to @p path; false on I/O failure. */
inline bool
writeKernelJson(const std::string& path, const std::string& json)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

/**
 * Parse a BENCH_kernels.json document previously written by
 * kernelEntriesJson. Tolerant of whitespace but keyed to this schema:
 * scans the "results" array for the known fields of each object.
 * Returns empty on anything unrecognizable.
 */
inline std::vector<KernelEntry>
parseKernelBaseline(const std::string& text)
{
    std::vector<KernelEntry> out;
    const std::size_t results = text.find("\"results\"");
    if (results == std::string::npos)
        return out;
    std::size_t pos = results;
    while (true) {
        const std::size_t open = text.find('{', pos);
        if (open == std::string::npos)
            break;
        const std::size_t close = text.find('}', open);
        if (close == std::string::npos)
            break;
        const std::string obj = text.substr(open, close - open);

        auto field = [&](const char* key) -> std::string {
            const std::string needle =
                std::string("\"") + key + "\":";
            std::size_t k = obj.find(needle);
            if (k == std::string::npos)
                return {};
            k += needle.size();
            while (k < obj.size() && obj[k] == ' ')
                ++k;
            std::size_t end = k;
            if (end < obj.size() && obj[end] == '"') {
                ++end;
                const std::size_t q = obj.find('"', end);
                return q == std::string::npos
                           ? std::string()
                           : obj.substr(k + 1, q - k - 1);
            }
            while (end < obj.size() && obj[end] != ',' &&
                   obj[end] != '\n')
                ++end;
            return obj.substr(k, end - k);
        };

        KernelEntry e;
        e.name = field("name");
        e.n = (std::size_t)std::atoll(field("n").c_str());
        e.threads =
            (std::size_t)std::atoll(field("threads").c_str());
        e.repeats = (unsigned)std::atoi(field("repeats").c_str());
        e.secondsMean = std::atof(field("seconds_mean").c_str());
        e.secondsMin = std::atof(field("seconds_min").c_str());
        // Absent in pre-mem baselines: parse to 0, which the mem gate
        // treats as "no data" rather than a regression from zero.
        e.peakRssBytes = (std::uint64_t)std::strtoull(
            field("peak_rss_bytes").c_str(), nullptr, 10);
        e.allocBytes = (std::uint64_t)std::strtoull(
            field("alloc_bytes").c_str(), nullptr, 10);
        if (!e.name.empty())
            out.push_back(std::move(e));
        pos = close + 1;
    }
    return out;
}

/** Read a whole file; false when it cannot be opened. */
inline bool
readFileText(const std::string& path, std::string& out)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, got);
    std::fclose(f);
    return true;
}

} // namespace zkp::bench

#endif // ZKP_BENCH_KERNELS_COMMON_H
