/**
 * @file
 * E0 — execution-time breakdown (paper §IV-B, "Execution time
 * analysis"): elapsed time of each stage, per constraint count and
 * curve, plus the share of total pipeline time per stage.
 *
 * Paper reference points: setup is the most time-consuming stage
 * (76.1% of the pipeline) followed by proving (13.4%), consistent
 * across constraint sizes.
 */

#include "bench_util.h"
#include "core/pipeline.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    using core::Stage;
    const auto sizes = sweepSizes();
    const unsigned reps = repeats();

    TextTable table;
    table.setHeader({"constraints", "compile", "setup", "witness",
                     "proving", "verifying", "total"});

    std::array<double, core::kNumStages> stage_totals{};
    for (std::size_t n : sizes) {
        core::StageRunner<Curve> runner(n);
        std::array<double, core::kNumStages> secs{};
        for (core::Stage s : core::kAllStages) {
            double sum = 0;
            for (unsigned r = 0; r < reps; ++r)
                sum += runner.run(s).seconds;
            secs[(std::size_t)s] = sum / reps;
            stage_totals[(std::size_t)s] += secs[(std::size_t)s];
        }
        double total = 0;
        for (double v : secs)
            total += v;
        table.addRow({"2^" + std::to_string(log2Of(n)),
                      fmtSeconds(secs[0]), fmtSeconds(secs[1]),
                      fmtSeconds(secs[2]), fmtSeconds(secs[3]),
                      fmtSeconds(secs[4]), fmtSeconds(total)});
    }
    printTable(std::string("E0 execution time per stage, ") +
                   Curve::kName,
               table);

    double grand = 0;
    for (double v : stage_totals)
        grand += v;
    TextTable share;
    share.setHeader({"stage", "share of pipeline",
                     "paper (all sizes)"});
    const char* paper[] = {"-", "76.1%", "-", "13.4%", "-"};
    for (core::Stage s : core::kAllStages) {
        share.addRow({core::stageName(s),
                      fmtPct(stage_totals[(std::size_t)s] / grand, 1),
                      paper[(std::size_t)s]});
    }
    printTable(std::string("E0 stage share of total time, ") +
                   Curve::kName,
               share);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_exec_time: stage elapsed times "
                "(ZKP_MAX_LOG_N=%ld, repeats=%u)\n",
                zkp::bench::envLong("ZKP_MAX_LOG_N", 12),
                zkp::bench::repeats());
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    return 0;
}
