/**
 * @file
 * E4 — Table III: maximum DRAM bandwidth per stage, averaged over the
 * three modelled CPUs, per curve.
 *
 * Paper reference points: proving (25.0 GB/s) and setup (23.4 GB/s)
 * demand the highest bandwidth, about 2x compile; witness (~2.7 GB/s)
 * and verifying (~5 GB/s) barely touch DRAM.
 */

#include <map>

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
std::array<double, core::kNumStages>
avgMaxBandwidth()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);

    // Per stage: max over sizes of the per-CPU max bandwidth, then
    // average over the CPUs (the paper's Table III convention).
    std::map<std::string, std::array<double, core::kNumStages>> per_cpu;
    for (const auto& c : cells)
        for (const auto& pc : c.perCpu) {
            auto& arr = per_cpu[pc.cpu];
            arr[(std::size_t)c.stage] = std::max(
                arr[(std::size_t)c.stage], pc.maxBandwidthGBps);
        }

    std::array<double, core::kNumStages> avg{};
    for (const auto& [cpu, arr] : per_cpu)
        for (std::size_t s = 0; s < core::kNumStages; ++s)
            avg[s] += arr[s] / per_cpu.size();
    return avg;
}

} // namespace
} // namespace zkp::bench

int
main()
{
    using namespace zkp;
    using namespace zkp::bench;
    std::printf("bench_table3_bandwidth: max DRAM bandwidth per stage "
                "(avg of the 3 modelled CPUs)\n");

    auto bn = avgMaxBandwidth<snark::Bn254>();
    auto bls = avgMaxBandwidth<snark::Bls381>();

    TextTable table;
    table.setHeader({"EC", "compile", "setup", "witness", "proving",
                     "verifying"});
    auto row = [&](const char* name,
                   const std::array<double, core::kNumStages>& a) {
        table.addRow({name, fmtF(a[0], 2), fmtF(a[1], 2), fmtF(a[2], 2),
                      fmtF(a[3], 2), fmtF(a[4], 2)});
    };
    row("BN (GB/s)", bn);
    row("BLS (GB/s)", bls);
    table.addRow({"paper BN", "10.30", "23.40", "2.70", "25.00", "5.20"});
    table.addRow({"paper BLS", "11.50", "20.20", "2.80", "22.90",
                  "4.40"});
    printTable("Table III: maximum memory bandwidth", table);
    return 0;
}
