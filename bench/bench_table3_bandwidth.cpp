/**
 * @file
 * E4 — Table III: maximum DRAM bandwidth per stage, averaged over the
 * three modelled CPUs, per curve.
 *
 * Paper reference points: proving (25.0 GB/s) and setup (23.4 GB/s)
 * demand the highest bandwidth, about 2x compile; witness (~2.7 GB/s)
 * and verifying (~5 GB/s) barely touch DRAM.
 */

#include <map>

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
std::array<double, core::kNumStages>
avgMaxBandwidth()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);

    // Per stage: max over sizes of the per-CPU max bandwidth, then
    // average over the CPUs (the paper's Table III convention).
    std::map<std::string, std::array<double, core::kNumStages>> per_cpu;
    for (const auto& c : cells)
        for (const auto& pc : c.perCpu) {
            auto& arr = per_cpu[pc.cpu];
            arr[(std::size_t)c.stage] = std::max(
                arr[(std::size_t)c.stage], pc.maxBandwidthGBps);
        }

    std::array<double, core::kNumStages> avg{};
    for (const auto& [cpu, arr] : per_cpu)
        for (std::size_t s = 0; s < core::kNumStages; ++s)
            avg[s] += arr[s] / per_cpu.size();
    return avg;
}

/**
 * --hw mode: simulated vs measured DRAM bandwidth demand. The
 * measured side is estimated as LLC-load-misses x 64B over the
 * stage's wall time — a lower bound (stores and prefetch fills are
 * not counted) that still ranks the stages the way Table III does.
 */
template <typename Curve>
void
hwComparison(std::size_t n)
{
    core::SweepConfig cfg;
    cfg.sizes = {n};
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);

    auto rows = measureHwStages<Curve>(n, 1);

    TextTable table;
    table.setHeader({"stage", "sim i9 max GB/s", "measured GB/s",
                     "hw LLC MB", "hw seconds"});
    for (core::Stage s : core::kAllStages) {
        double sim = 0;
        for (const auto& c : cells) {
            if (c.stage != s)
                continue;
            for (const auto& pc : c.perCpu)
                if (pc.cpu == "i9-13900K")
                    sim = pc.maxBandwidthGBps;
        }
        for (const auto& r : rows) {
            if (r.stage != s)
                continue;
            const bool ok = r.hw.available;
            table.addRow(
                {core::stageName(s), fmtF(sim, 2),
                 ok ? fmtF(r.hw.bandwidthGBps, 3) : "n/a",
                 ok ? fmtF(r.hw.dramBytesEst / 1e6, 2) : "n/a",
                 ok ? fmtF(r.hw.seconds, 4) : "n/a"});
        }
    }
    printTable(std::string("Table III --hw: DRAM bandwidth, sim vs "
                           "perf_event estimate, n=2^") +
                   std::to_string(log2Of(n)) + ", " + Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp;
    using namespace zkp::bench;

    if (hasFlag(argc, argv, "--hw")) {
        std::printf("bench_table3_bandwidth --hw: simulated vs "
                    "measured DRAM bandwidth\n");
        const std::size_t n = sweepSizes().back();
        if (hwModeUsable("bench_table3_bandwidth")) {
            hwComparison<snark::Bn254>(n);
            hwComparison<snark::Bls381>(n);
            return 0;
        }
    }

    std::printf("bench_table3_bandwidth: max DRAM bandwidth per stage "
                "(avg of the 3 modelled CPUs)\n");

    auto bn = avgMaxBandwidth<snark::Bn254>();
    auto bls = avgMaxBandwidth<snark::Bls381>();

    TextTable table;
    table.setHeader({"EC", "compile", "setup", "witness", "proving",
                     "verifying"});
    auto row = [&](const char* name,
                   const std::array<double, core::kNumStages>& a) {
        table.addRow({name, fmtF(a[0], 2), fmtF(a[1], 2), fmtF(a[2], 2),
                      fmtF(a[3], 2), fmtF(a[4], 2)});
    };
    row("BN (GB/s)", bn);
    row("BLS (GB/s)", bls);
    table.addRow({"paper BN", "10.30", "23.40", "2.70", "25.00", "5.20"});
    table.addRow({"paper BLS", "11.50", "20.20", "2.80", "22.90",
                  "4.40"});
    printTable("Table III: maximum memory bandwidth", table);
    return 0;
}
