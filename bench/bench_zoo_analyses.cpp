/**
 * @file
 * The paper's four analyses (top-down bounds, memory behavior, opcode
 * mix, scaling) applied to every circuit-zoo entry, with the
 * exponentiation chain as the baseline the paper characterized.
 *
 * The original study asks where the Groth16 pipeline stalls and what
 * it executes for ONE circuit family; this bench asks how much of
 * that characterization is a property of the proving system versus
 * the circuit. Each zoo entry runs through the instrumented
 * StageRunner at a modest scale (tables A/B), then through an
 * uninstrumented prove-time sweep at x1/x2/x4 scale (table C).
 *
 * Run: ./build/bench/bench_zoo_analyses [--quick]
 *   --quick   restrict to {exp, poseidon, sha256} (CI-sized)
 *
 * Env: ZKP_SAMPLE_MASK, ZKP_CSV as in the other benches.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/analysis.h"
#include "r1cs/zoo.h"

namespace zkp::bench {
namespace {

/** Analysis scales: smaller than the zoo defaults so the fully
 *  instrumented runs (every access through the cache models) stay in
 *  seconds per circuit. */
struct Plan
{
    const char* name;
    std::size_t scale;
};

std::vector<Plan>
plans(bool quick)
{
    if (quick)
        return {{"exp", 2048}, {"poseidon", 8}, {"sha256", 1}};
    return {{"exp", 2048},   {"mimc", 4},   {"poseidon", 8},
            {"sha256", 1},   {"merkle", 8}, {"range", 64},
            {"schnorr", 1}};
}

/** Tables A+B: instrumented prove-stage characterization plus the
 *  per-stage wall-time split, one row per circuit. */
template <typename Curve>
void
runCharacterization(const std::vector<Plan>& selected)
{
    using Fr = typename Curve::Fr;

    TextTable prove_table;
    prove_table.setHeader({"circuit", "constraints", "prove", "bound",
                           "LLC MPKI", "DRAM MB", "mix C/B/D"});
    TextTable stage_table;
    stage_table.setHeader({"circuit", "compile", "setup", "witness",
                           "prove", "verify"});

    for (const Plan& p : selected) {
        const auto* e = r1cs::zoo::find<Fr>(p.name);
        if (!e)
            continue;
        core::SweepConfig cfg;
        cfg.sizes = {e->predictedConstraints(p.scale)};
        cfg.sampleMask = sampleMask();
        core::StageRunner<Curve> runner(*e, p.scale);

        std::vector<std::string> stage_row = {e->name};
        std::string prove_bound, prove_mpki, prove_dram, prove_mix;
        double prove_seconds = 0;
        for (core::Stage s : core::kAllStages) {
            auto obs = core::observeStage(runner, s, cfg);
            stage_row.push_back(fmtSeconds(obs.run.seconds));
            if (s != core::Stage::Proving)
                continue;
            prove_seconds = obs.run.seconds;
            const auto& i9 = obs.cpus.back();
            auto td = sim::classifyTopDown(
                core::stageEventsFor(obs, i9), *i9.cpu);
            prove_bound = td.boundCategory();
            const double instr =
                (double)obs.run.counters.instructions();
            prove_mpki = fmtF(
                instr > 0 ? i9.llcLoadMisses / (instr / 1000.0) : 0.0,
                3);
            prove_dram = fmtF(i9.dramBytes / (1024.0 * 1024.0), 1);
            auto mix = core::opcodeMixOf(obs.run.counters);
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f",
                          mix.computePct, mix.controlPct,
                          mix.dataPct);
            prove_mix = buf;
        }
        prove_table.addRow({e->name, std::to_string(cfg.sizes[0]),
                            fmtSeconds(prove_seconds), prove_bound,
                            prove_mpki, prove_dram, prove_mix});
        stage_table.addRow(stage_row);
    }
    printTable(std::string("zoo prove-stage characterization "
                           "(i9 model), ") +
                   Curve::kName,
               prove_table);
    printTable(std::string("zoo per-stage wall time, ") + Curve::kName,
               stage_table);
}

/** Table C: uninstrumented prove-time scaling at x1/x2/x4 scale,
 *  normalized per constraint (the paper's Fig. 6 axis, generalized:
 *  does a constraint cost the same across circuit families?). */
template <typename Curve>
void
runScaling(const std::vector<Plan>& selected)
{
    using Fr = typename Curve::Fr;
    TextTable table;
    table.setHeader({"circuit", "scale", "constraints", "prove",
                     "us/constraint"});
    for (const Plan& p : selected) {
        const auto* e = r1cs::zoo::find<Fr>(p.name);
        if (!e)
            continue;
        for (std::size_t mult : {1, 2, 4}) {
            const std::size_t scale = p.scale * mult;
            core::StageRunner<Curve> runner(*e, scale);
            auto run = runner.run(core::Stage::Proving);
            const double n =
                (double)e->predictedConstraints(scale);
            table.addRow({e->name, std::to_string(scale),
                          std::to_string((std::size_t)n),
                          fmtSeconds(run.seconds),
                          fmtF(run.seconds / n * 1e6, 3)});
        }
    }
    printTable(std::string("zoo prove-time scaling, ") + Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp::bench;
    const bool quick = hasFlag(argc, argv, "--quick");
    const auto selected = plans(quick);
    std::printf("bench_zoo_analyses: the paper's four analyses over "
                "the circuit zoo (%s)\n",
                quick ? "--quick subset" : "full catalog");
    runCharacterization<zkp::snark::Bn254>(selected);
    runScaling<zkp::snark::Bn254>(selected);
    return 0;
}
