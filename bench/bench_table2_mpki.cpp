/**
 * @file
 * E3 — Table II: LLC load MPKI for the five stages, per CPU and curve,
 * reporting the maximum across the constraint-size sweep (the paper's
 * worst-case convention).
 *
 * Paper reference points (max MPKI): witness and proving are the
 * cache-unfriendly stages (1.03 and 0.48); setup is the friendliest
 * (0.03-0.08) despite moving the most data — streaming + prefetch.
 */

#include <map>

#include "bench_util.h"

namespace zkp::bench {
namespace {

using Key = std::pair<core::Stage, std::string>; // stage, cpu

template <typename Curve>
std::map<Key, double>
maxMpki()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);
    std::map<Key, double> out;
    for (const auto& c : cells) {
        for (const auto& pc : c.perCpu) {
            double& slot = out[{c.stage, pc.cpu}];
            slot = std::max(slot, pc.mpki);
        }
    }
    return out;
}

/**
 * --hw mode: simulated vs measured LLC load MPKI at one size, so the
 * simulator's calibration error is a printed number instead of an
 * article of faith. Simulated values come from the modelled i9
 * hierarchy (the newest of the three); measured values from
 * perf_event LLC-load/LLC-load-miss counters on this machine.
 */
template <typename Curve>
void
hwComparison(std::size_t n)
{
    core::SweepConfig cfg;
    cfg.sizes = {n};
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);

    auto rows = measureHwStages<Curve>(n, 1);

    TextTable table;
    table.setHeader({"stage", "sim i7", "sim i5", "sim i9",
                     "measured", "i9/hw"});
    for (core::Stage s : core::kAllStages) {
        double i7 = 0, i5 = 0, i9 = 0;
        for (const auto& c : cells) {
            if (c.stage != s)
                continue;
            for (const auto& pc : c.perCpu) {
                if (pc.cpu == "i7-8650U")
                    i7 = pc.mpki;
                else if (pc.cpu == "i5-11400")
                    i5 = pc.mpki;
                else if (pc.cpu == "i9-13900K")
                    i9 = pc.mpki;
            }
        }
        double hw_mpki = 0;
        bool hw_ok = false;
        for (const auto& r : rows)
            if (r.stage == s) {
                hw_ok = r.hw.available;
                hw_mpki = r.hw.llcLoadMpki;
            }
        table.addRow({core::stageName(s), fmtF(i7, 3), fmtF(i5, 3),
                      fmtF(i9, 3), hw_ok ? fmtF(hw_mpki, 3) : "n/a",
                      hw_ok && hw_mpki > 0 ? fmtF(i9 / hw_mpki, 2)
                                           : "n/a"});
    }
    printTable(std::string("Table II --hw: LLC load MPKI, "
                           "sim vs perf_event, n=2^") +
                   std::to_string(log2Of(n)) + ", " + Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp;
    using namespace zkp::bench;

    if (hasFlag(argc, argv, "--hw")) {
        std::printf("bench_table2_mpki --hw: simulated vs measured "
                    "LLC load MPKI\n");
        const std::size_t n = sweepSizes().back();
        if (hwModeUsable("bench_table2_mpki")) {
            hwComparison<snark::Bn254>(n);
            hwComparison<snark::Bls381>(n);
            return 0;
        }
        // Fall through to the simulated tables.
    }

    std::printf("bench_table2_mpki: max LLC load MPKI per stage "
                "(max over the size sweep)\n");

    auto bn = maxMpki<snark::Bn254>();
    auto bls = maxMpki<snark::Bls381>();

    TextTable table;
    table.setHeader({"stage", "i7-BN", "i7-BLS", "i5-BN", "i5-BLS",
                     "i9-BN", "i9-BLS"});
    for (core::Stage s : core::kAllStages) {
        table.addRow({core::stageName(s),
                      fmtF(bn[{s, "i7-8650U"}], 3),
                      fmtF(bls[{s, "i7-8650U"}], 3),
                      fmtF(bn[{s, "i5-11400"}], 3),
                      fmtF(bls[{s, "i5-11400"}], 3),
                      fmtF(bn[{s, "i9-13900K"}], 3),
                      fmtF(bls[{s, "i9-13900K"}], 3)});
    }
    printTable("Table II: LLC load MPKI (simulated hierarchies)", table);

    TextTable paper;
    paper.setHeader({"stage", "i7-BN", "i7-BLS", "i5-BN", "i5-BLS",
                     "i9-BN", "i9-BLS"});
    paper.addRow({"compile", "0.32", "0.34", "0.32", "0.22", "0.18",
                  "0.22"});
    paper.addRow({"setup", "0.04", "0.03", "0.08", "0.06", "0.05",
                  "0.03"});
    paper.addRow({"witness", "0.62", "0.47", "0.28", "0.40", "0.29",
                  "1.03"});
    paper.addRow({"proving", "0.17", "0.14", "0.48", "0.34", "0.45",
                  "0.28"});
    paper.addRow({"verifying", "0.15", "0.10", "0.20", "0.16", "0.15",
                  "0.15"});
    printTable("Table II (paper, for comparison)", paper);
    return 0;
}
