/**
 * @file
 * E7 — Fig. 6: strong scaling. Speedup of each stage on the modelled
 * i9-13900K as the thread count grows 1..32 at fixed constraint
 * counts.
 *
 * The parallelizable share of every stage is *measured* (wall time
 * inside parallel regions); the projection to k threads applies the
 * work/span model with the i9's P/E/SMT capacity curve (the host the
 * benches run on may not have 32 hardware threads — see
 * EXPERIMENTS.md).
 *
 * Paper reference points: at 2^18 constraints setup reaches ~5.3x and
 * proving ~3.5x; compile and witness saturate around 2x; verifying is
 * flat; tiny tasks degrade beyond ~18 threads.
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

const std::vector<unsigned> kThreads{1, 2, 4, 8, 12, 18, 24, 32};

template <typename Curve>
void
runCurve()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    auto curves = core::runStrongScaling<Curve>(cfg, kThreads,
                                                sim::cpuI9_13900K());

    TextTable table;
    std::vector<std::string> header{"stage", "n", "par%"};
    for (unsigned t : kThreads)
        header.push_back("x" + std::to_string(t));
    table.setHeader(header);
    for (const auto& c : curves) {
        std::vector<std::string> row{
            core::stageName(c.stage),
            "2^" + std::to_string(log2Of(c.constraints)),
            fmtF(100 * c.measuredParallelFraction, 1)};
        for (const auto& [t, sp] : c.speedups)
            row.push_back(fmtF(sp, 2));
        table.addRow(row);
    }
    printTable(std::string("Fig.6 strong-scaling speedup on the i9 "
                           "model, ") +
                   Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_fig6_strong_scaling: speedup vs threads (fixed "
                "problem size)\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    std::printf("\npaper reference (2^18): setup ~5.26x, proving "
                "~3.51x; compile/witness saturate ~2x; verifying "
                "flat\n");
    return 0;
}
