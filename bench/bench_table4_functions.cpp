/**
 * @file
 * E5 — Table IV: the function families that dominate CPU time per
 * stage (the paper's VTune hotspot list: memcpy, bigint, heap
 * allocation/malloc, plus the interpreter dispatch that stands in for
 * the WASM host).
 *
 * Paper reference points: compile spends ~12% in malloc, ~8% in
 * memcpy, ~5% in bigint; proving ~10% in memcpy; verifying ~10% in
 * bigint.
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    core::SweepConfig cfg;
    cfg.sizes = {sweepSizes().back()};
    auto cells = core::runCodeAnalysis<Curve>(cfg);

    TextTable table;
    table.setHeader(
        {"stage", "function", "share of stage CPU time"});
    for (const auto& c : cells) {
        for (const auto& f : c.functions) {
            if (f.pct < 0.5)
                continue; // hotspot list, like the profiler's cut-off
            table.addRow({core::stageName(c.stage), f.function,
                          fmtF(f.pct, 1) + "%"});
        }
    }
    printTable(std::string("Table IV: time-consuming functions, ") +
                   Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_table4_functions: function-level code analysis "
                "(calibrated attribution)\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    std::printf("\npaper reference: compile ~12%% malloc, ~8%% memcpy, "
                "~5%% bigint; proving ~10%% memcpy; verifying ~10%% "
                "bigint\n");
    return 0;
}
