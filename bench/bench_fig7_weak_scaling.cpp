/**
 * @file
 * E8 — Fig. 7: weak scaling on the modelled i9. Threads double from
 * 1 to 32 while the constraint count doubles with them, starting from
 * ZKP_WS_BASE_LOG_N (default 2^10; the paper starts at 2^13).
 *
 * Paper reference points: proving keeps scaling as the problem grows;
 * witness and verifying show near-linear WS speedup because their
 * absolute time is (nearly) independent of the constraint count.
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

const std::vector<unsigned> kThreads{1, 2, 4, 8, 16, 32};

template <typename Curve>
void
runCurve(std::size_t base)
{
    auto curves = core::runWeakScaling<Curve>(base, kThreads,
                                              sim::cpuI9_13900K());

    TextTable table;
    std::vector<std::string> header{"stage"};
    for (unsigned t : kThreads) {
        header.push_back("x" + std::to_string(t) + " (n=2^" +
                         std::to_string(log2Of(base * t)) + ")");
    }
    header.push_back("Gustafson serial%");
    table.setHeader(header);
    for (const auto& c : curves) {
        std::vector<std::string> row{core::stageName(c.stage)};
        for (const auto& [t, sp] : c.speedups)
            row.push_back(fmtF(sp, 2));
        row.push_back(fmtF(100 * c.fittedSerial, 1));
        table.addRow(row);
    }
    printTable(std::string("Fig.7 weak-scaling speedup on the i9 "
                           "model, ") +
                   Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    const std::size_t base =
        std::size_t(1) << zkp::bench::envLong("ZKP_WS_BASE_LOG_N", 10);
    std::printf("bench_fig7_weak_scaling: threads and constraints "
                "double together (base n=%zu)\n", base);
    zkp::bench::runCurve<zkp::snark::Bn254>(base);
    zkp::bench::runCurve<zkp::snark::Bls381>(base);
    std::printf("\npaper reference: witness/verifying near-linear WS "
                "speedup; proving the most scalable compute stage\n");
    return 0;
}
