/**
 * @file
 * E12 — zk-harness-style multi-circuit benchmark. The paper builds on
 * zk-Bench [19] and zk-harness [60], which compare proving systems
 * across circuit families; this bench runs the full Groth16 pipeline
 * over every circuit in this library's catalogue (exponentiation,
 * MiMC preimage, range proof, Merkle membership) on both curves.
 */

#include "bench_util.h"
#include "common/timer.h"
#include "r1cs/circuits.h"
#include "snark/groth16.h"

namespace zkp::bench {
namespace {

template <typename Curve>
struct PipelineTimes
{
    std::size_t constraints = 0;
    double compile = 0, setup = 0, witness = 0, prove = 0, verify = 0;
    bool ok = false;
};

/** Run the full pipeline for an already-described circuit. */
template <typename Curve, typename Builder>
PipelineTimes<Curve>
runPipeline(Builder& builder, const std::vector<typename Curve::Fr>& pub,
            const std::vector<typename Curve::Fr>& priv)
{
    using Scheme = snark::Groth16<Curve>;
    PipelineTimes<Curve> out;
    Rng rng(7);

    Timer t;
    auto cs = builder.compile();
    out.compile = t.seconds();
    out.constraints = cs.numConstraints();

    r1cs::WitnessCalculator<typename Curve::Fr> calc(
        builder.witnessProgram());

    t.reset();
    auto keys = Scheme::setup(cs, rng);
    out.setup = t.lap();

    auto z = calc.compute(pub, priv);
    out.witness = t.lap();

    auto proof = Scheme::prove(keys.pk, cs, z, rng);
    out.prove = t.lap();

    out.ok = Scheme::verify(keys.vk, pub, proof);
    out.verify = t.seconds();
    return out;
}

template <typename Curve>
void
runCurve()
{
    using Fr = typename Curve::Fr;
    Rng rng(99);

    TextTable table;
    table.setHeader({"circuit", "constraints", "compile", "setup",
                     "witness", "prove", "verify", "ok"});
    auto add_row = [&](const char* name,
                       const PipelineTimes<Curve>& p) {
        table.addRow({name, std::to_string(p.constraints),
                      fmtSeconds(p.compile), fmtSeconds(p.setup),
                      fmtSeconds(p.witness), fmtSeconds(p.prove),
                      fmtSeconds(p.verify), p.ok ? "yes" : "NO"});
    };

    {
        r1cs::ExponentiationCircuit<Fr> circ(1 << 10);
        Fr x = Fr::random(rng);
        add_row("exponentiation (2^10)",
                runPipeline<Curve>(circ.builder, {circ.evaluate(x)},
                                   {x}));
    }
    {
        // MiMC preimage knowledge: h = MiMC(x, 0).
        r1cs::CircuitBuilder<Fr> b;
        auto pub = b.publicInput();
        auto x = b.privateInput();
        auto h = r1cs::Mimc<Fr>::hash2Gadget(b, x,
                                             b.constant(Fr::zero()));
        b.assertEqual(h, pub);
        Fr secret = Fr::random(rng);
        struct Wrap
        {
            r1cs::CircuitBuilder<Fr>& b;
            auto compile() { return b.compile(); }
            auto witnessProgram() { return b.witnessProgram(); }
        } wrap{b};
        add_row("mimc preimage",
                runPipeline<Curve>(
                    wrap, {r1cs::Mimc<Fr>::hash2(secret, Fr::zero())},
                    {secret}));
    }
    {
        r1cs::gadgets::RangeCircuit<Fr> circ(64);
        Fr v = Fr::fromU64(123456789);
        add_row("range 64-bit",
                runPipeline<Curve>(
                    circ.builder,
                    {r1cs::gadgets::RangeCircuit<Fr>::commitment(v)},
                    {v}));
    }
    {
        const std::size_t depth = 8;
        r1cs::gadgets::MerkleCircuit<Fr> circ(depth);
        Fr leaf = Fr::random(rng);
        std::vector<Fr> sib;
        std::vector<bool> dirs;
        for (std::size_t i = 0; i < depth; ++i) {
            sib.push_back(Fr::random(rng));
            dirs.push_back(rng.next() & 1);
        }
        Fr root = r1cs::gadgets::MerkleCircuit<Fr>::computeRoot(
            leaf, sib, dirs);
        add_row("merkle depth-8",
                runPipeline<Curve>(
                    circ.builder, {root},
                    r1cs::gadgets::MerkleCircuit<Fr>::privateInputs(
                        leaf, sib, dirs)));
    }
    printTable(std::string("circuit catalogue pipeline times, ") +
                   Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_circuits: zk-harness-style sweep over the "
                "circuit catalogue\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    return 0;
}
