/**
 * @file
 * E12 — zk-harness-style multi-circuit benchmark, driven by the
 * circuit-zoo catalog (src/r1cs/zoo.h). The paper builds on zk-Bench
 * [19] and zk-harness [60], which compare proving systems across
 * circuit families; this bench runs the full pipeline over every zoo
 * entry — exponentiation, MiMC, Poseidon, SHA-256, Merkle, range,
 * Schnorr — under both Groth16 and PlonK (through the generic
 * R1CS->PlonK lowering) on both curves.
 *
 * Modes:
 *   (default)       full sweep at each entry's default scale
 *   --list          print the catalog (name, family, scale meaning,
 *                   default scale, constraint model) and exit
 *   --smoke         tiny-scale Groth16 prove/verify of every entry on
 *                   bn254; exits nonzero on any failure (CI gate)
 *   --full          also run PlonK for entries whose lowering exceeds
 *                   the default gate budget (SHA-256: ~114k gates and
 *                   a ~520k-point SRS — minutes of single-core work)
 *
 * Env knobs: ZKP_CSV=1 adds CSV blocks; ZKP_BENCH_THREADS sets the
 * worker count (default 1, matching the paper's single-thread runs).
 */

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "r1cs/witness.h"
#include "r1cs/zoo.h"
#include "snark/groth16.h"
#include "snark/plonk.h"
#include "snark/plonk_from_r1cs.h"

namespace zkp::bench {
namespace {

/** PlonK runs above this many lowered gates only under --full. */
constexpr std::size_t kPlonkGateBudget = 1 << 16;

struct ZooTimes
{
    std::size_t constraints = 0;
    std::size_t gates = 0; // lowered PlonK gate count
    double compile = 0, g16_setup = 0, witness = 0, g16_prove = 0,
           g16_verify = 0;
    double pl_setup = 0, pl_prove = 0, pl_verify = 0;
    bool g16_ok = false;
    bool pl_ok = false;
    bool pl_ran = false;
};

template <typename Curve>
ZooTimes
runEntry(const r1cs::zoo::Entry<typename Curve::Fr>& e,
         std::size_t scale, std::size_t threads,
         std::size_t plonk_gate_budget)
{
    using Fr = typename Curve::Fr;
    ZooTimes out;
    Rng rng(0x7a6f6f42u);

    Timer t;
    auto builder = e.build(scale);
    auto cs = builder.compile(threads);
    out.compile = t.seconds();
    out.constraints = cs.numConstraints();

    r1cs::WitnessCalculator<Fr> calc(builder.witnessProgram());
    auto w = e.sample(scale, rng);

    t.reset();
    auto keys = snark::Groth16<Curve>::setup(cs, rng, threads);
    out.g16_setup = t.lap();
    auto z = calc.compute(w.pub, w.priv, threads);
    out.witness = t.lap();
    auto proof =
        snark::Groth16<Curve>::prove(keys.pk, cs, z, rng, threads);
    out.g16_prove = t.lap();
    out.g16_ok = snark::Groth16<Curve>::verify(keys.vk, w.pub, proof);
    out.g16_verify = t.seconds();

    snark::PlonkFromR1cs<Fr> lowered(cs);
    out.gates = lowered.builder.numGates();
    if (out.gates > plonk_gate_budget)
        return out;
    out.pl_ran = true;
    t.reset();
    auto pkeys = snark::Plonk<Curve>::setup(lowered.builder, rng,
                                            threads);
    out.pl_setup = t.lap();
    auto values = lowered.assign(z);
    auto pproof = snark::Plonk<Curve>::prove(pkeys.pk, values, w.pub,
                                             rng, threads);
    out.pl_prove = t.lap();
    out.pl_ok = snark::Plonk<Curve>::verify(pkeys.vk, w.pub, pproof);
    out.pl_verify = t.seconds();
    return out;
}

template <typename Curve>
void
runCurve(bool full, std::size_t threads)
{
    using Fr = typename Curve::Fr;
    TextTable table;
    table.setHeader({"circuit", "scale", "r1cs", "gates", "compile",
                     "g16 setup", "witness", "g16 prove", "g16 verify",
                     "plonk setup", "plonk prove", "plonk verify",
                     "ok"});
    const std::size_t budget =
        full ? ~std::size_t(0) : kPlonkGateBudget;
    for (const auto& e : r1cs::zoo::all<Fr>()) {
        auto r = runEntry<Curve>(e, e.defaultScale, threads, budget);
        const bool ok = r.g16_ok && (!r.pl_ran || r.pl_ok);
        table.addRow(
            {e.name, std::to_string(e.defaultScale),
             std::to_string(r.constraints), std::to_string(r.gates),
             fmtSeconds(r.compile), fmtSeconds(r.g16_setup),
             fmtSeconds(r.witness), fmtSeconds(r.g16_prove),
             fmtSeconds(r.g16_verify),
             r.pl_ran ? fmtSeconds(r.pl_setup) : "--full",
             r.pl_ran ? fmtSeconds(r.pl_prove) : "--full",
             r.pl_ran ? fmtSeconds(r.pl_verify) : "--full",
             ok ? "yes" : "NO"});
    }
    printTable(std::string("circuit zoo pipeline times, ") +
                   Curve::kName,
               table);
}

void
listCatalog()
{
    using Fr = snark::Bn254::Fr;
    TextTable table;
    table.setHeader({"name", "family", "scale meaning", "default",
                     "constraints@default", "description"});
    for (const auto& e : r1cs::zoo::all<Fr>())
        table.addRow({e.name, e.family, e.scaleMeaning,
                      std::to_string(e.defaultScale),
                      std::to_string(
                          e.predictedConstraints(e.defaultScale)),
                      e.description});
    printTable("circuit zoo catalog", table);
}

/** Tiny-scale Groth16 prove/verify of every entry; CI smoke gate. */
int
smoke()
{
    using Curve = snark::Bn254;
    using Fr = Curve::Fr;
    int failures = 0;
    for (const auto& e : r1cs::zoo::all<Fr>()) {
        const std::size_t scale =
            e.name == "exp" ? 64 : (e.name == "range" ? 16 : 1);
        auto r = runEntry<Curve>(e, scale, 1, 0);
        std::printf("smoke %-10s scale=%-3zu r1cs=%-6zu %s\n",
                    e.name.c_str(), scale, r.constraints,
                    r.g16_ok ? "ok" : "FAIL");
        if (!r.g16_ok)
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp::bench;
    if (hasFlag(argc, argv, "--list")) {
        listCatalog();
        return 0;
    }
    if (hasFlag(argc, argv, "--smoke"))
        return smoke();
    const bool full = hasFlag(argc, argv, "--full");
    const auto threads = (std::size_t)envLong("ZKP_BENCH_THREADS", 1);
    std::printf("bench_circuits: zoo sweep under Groth16 and PlonK "
                "(--list / --smoke / --full)\n");
    runCurve<zkp::snark::Bn254>(full, threads);
    runCurve<zkp::snark::Bls381>(full, threads);
    return 0;
}
