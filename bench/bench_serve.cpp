/**
 * @file
 * Closed-loop load generator for the proof-serving subsystem.
 *
 * Each client thread issues one request at a time (closed loop) and
 * waits for the result: proves at --verify-frac=0 or a mix where a
 * fraction of iterations re-submit the client's latest proof as a
 * Batch-priority verify (exercising priority scheduling and the
 * opportunistic verifyBatch path). QueueFull responses are counted
 * and retried after a short backoff — backpressure, not failure.
 *
 * Modes:
 *   default      in-process ProofService (no daemon needed)
 *   --socket P   wire client against a running zkperfd at path P
 *
 * Run: ./build/bench/bench_serve [--clients <n>] [--seconds <s>]
 *          [--requests <n>] [--log2 <k>] [--circuit <zoo>[:scale]]
 *          [--verify-frac <f>] [--workers <n>] [--queue <n>]
 *          [--prove-threads <n>] [--socket <path>] [--out <file>]
 *          [--smoke] [--stats-dump <file>]
 *
 *   --circuit    adds a circuit-zoo entry (wire id "<zoo>:<scale>",
 *                scale defaulting to the catalog default) to the
 *                workload mix; repeatable. Clients pick uniformly
 *                among the mix per iteration and generate each
 *                circuit's witnesses with its zoo sampler. Without
 *                the flag the mix is the classic single "exp<k>"
 *                workload. In socket mode the daemon must have
 *                registered the same ids (zkperfd --circuit).
 *   --smoke      CI shape: 200 requests total at 2^8 constraints
 *                (explicit --requests/--log2 still win)
 *   --stats-dump scrape-only mode: send a stats/v2 request to the
 *                daemon at --socket, write the raw
 *                zkperf-serve-stats/2 JSON document to <file>, and
 *                exit without generating load (CI uses this to
 *                assert on a live daemon's telemetry)
 *
 * Reports p50/p95/p99/p999/mean latency per request kind plus
 * throughput, and writes BENCH_serve.json whose "results" array uses
 * the BENCH_kernels.json entry schema, so `bench_compare --against`
 * can diff two serving runs — including the server-side
 * serve_server_{prove,verify}_{p50,p99,p999} tail-latency entries
 * scraped from the service's own lifecycle histograms.
 *
 * After a load run the bench cross-checks the server's end-to-end
 * quantiles against the client-observed ones: a request's server-side
 * lifespan (arrive → replied) lies strictly inside the client's
 * observed window, so the server p50 can only exceed the client p50
 * through a clock-domain or accounting bug. The gate allows 2x + 10ms
 * (server quantiles come from log2-bucketed histograms, whose
 * in-bucket interpolation can overestimate by up to the bucket width)
 * — still tight enough to catch unit mixups (ms vs us) and wall/steady
 * clock confusion, which are the bugs this check exists for.
 *
 * Exits 1 if any request failed (a rejected proof, an invalid verify,
 * a non-Ok terminal status, or a cross-check violation), 2 on usage
 * errors.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kernels_common.h"
#include "serve/circuit_host.h"
#include "serve/protocol.h"
#include "serve/service.h"

#include <unistd.h>

namespace {

using namespace zkp;
using bench::KernelEntry;

struct Options
{
    std::size_t clients = 8;
    double seconds = 10;
    std::uint64_t requests = 0; // 0 = run for --seconds
    std::size_t log2N = 12;
    std::vector<std::string> circuitSpecs;
    double verifyFrac = 0.25;
    std::size_t workers = 0;
    std::size_t queue = 0;
    std::size_t proveThreads = 0;
    std::string socketPath; // empty = in-process
    std::string outPath = "BENCH_serve.json";
    std::string statsDumpPath; // non-empty = scrape-only mode
};

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--clients <n>] [--seconds <s>] [--requests <n>]\n"
        "          [--log2 <k>] [--circuit <zoo>[:scale]]\n"
        "          [--verify-frac <f>] [--workers <n>]\n"
        "          [--queue <n>] [--prove-threads <n>]\n"
        "          [--socket <path>] [--out <file>] [--smoke]\n"
        "          [--stats-dump <file>]\n",
        argv0);
    return 2;
}

/** Per-client tallies; merged after the threads join. */
struct ClientStats
{
    std::vector<double> proveLatency;
    std::vector<double> verifyLatency;
    std::uint64_t queueFullRetries = 0;
    std::uint64_t failures = 0;
    std::uint64_t completed = 0;
};

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Shared run controls: time-based or fixed-count stop. */
struct RunControl
{
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> issued{0};
    std::uint64_t requestLimit = 0; // 0 = stop flag only

    bool
    claim()
    {
        if (stop.load(std::memory_order_relaxed))
            return false;
        if (requestLimit == 0)
            return true;
        return issued.fetch_add(1, std::memory_order_relaxed) <
               requestLimit;
    }
};

/** One circuit in the workload mix. */
struct MixItem
{
    std::string id; ///< wire-protocol circuit id
    const r1cs::zoo::Entry<snark::Bn254::Fr>* entry = nullptr;
    std::size_t scale = 0;
};

/**
 * Parse --circuit specs (plus the default exp workload when none are
 * given) into resolved mix items. Returns false on an unknown name.
 */
bool
resolveMix(const Options& opt, std::vector<MixItem>& mix)
{
    using Fr = snark::Bn254::Fr;
    if (opt.circuitSpecs.empty()) {
        MixItem item;
        item.id = "exp" + std::to_string(opt.log2N);
        item.entry = r1cs::zoo::find<Fr>("exp");
        item.scale = std::size_t(1) << opt.log2N;
        mix.push_back(std::move(item));
        return true;
    }
    for (const std::string& spec : opt.circuitSpecs) {
        MixItem item;
        std::string name = spec;
        if (auto colon = spec.find(':'); colon != std::string::npos) {
            name = spec.substr(0, colon);
            item.scale =
                (std::size_t)std::atol(spec.c_str() + colon + 1);
        }
        item.entry = r1cs::zoo::find<Fr>(name);
        if (!item.entry) {
            std::fprintf(stderr,
                         "bench_serve: unknown zoo circuit \"%s\"\n",
                         name.c_str());
            return false;
        }
        if (item.scale == 0)
            item.scale = item.entry->defaultScale;
        item.id = name + ":" + std::to_string(item.scale);
        mix.push_back(std::move(item));
    }
    return true;
}

/** One client iteration's generated workload. */
struct Workload
{
    std::vector<std::uint8_t> publicInputs;
    std::vector<std::uint8_t> privateInputs;
};

Workload
makeWorkload(Rng& rng, const MixItem& item)
{
    using Fr = snark::Bn254::Fr;
    auto w = item.entry->sample(item.scale, rng);
    Workload out;
    out.publicInputs = serve::encodeScalars<Fr>(w.pub);
    out.privateInputs = serve::encodeScalars<Fr>(w.priv);
    return out;
}

/** True on the verify-frac schedule (deterministic per client). */
bool
wantVerify(Rng& rng, double frac, bool haveProof)
{
    if (!haveProof || frac <= 0)
        return false;
    return (double)rng.nextBelow(1 << 20) / (double)(1 << 20) < frac;
}

void
recordOutcome(ClientStats& stats, serve::Status status, bool is_verify,
              bool valid, double latency)
{
    if (status == serve::Status::Ok && (!is_verify || valid)) {
        stats.completed++;
        (is_verify ? stats.verifyLatency : stats.proveLatency)
            .push_back(latency);
    } else {
        stats.failures++;
    }
}

void
clientLoopInproc(serve::ProofService& service,
                 const std::vector<MixItem>& mix, const Options& opt,
                 RunControl& ctl, std::size_t index,
                 ClientStats& stats)
{
    Rng rng(7001 + (u64)index);
    std::vector<std::uint8_t> lastProof;
    std::vector<std::uint8_t> lastPublic;
    std::string lastCircuit;

    while (ctl.claim()) {
        const bool verify =
            wantVerify(rng, opt.verifyFrac, !lastProof.empty());
        const MixItem& item =
            mix[mix.size() == 1 ? 0 : rng.nextBelow(mix.size())];
        const Workload w =
            verify ? Workload{} : makeWorkload(rng, item);
        const double t0 = wallNow();
        serve::Response r;
        while (true) {
            serve::RequestOptions ropt;
            ropt.priority = verify ? serve::Priority::Batch
                                   : serve::Priority::Interactive;
            auto ticket =
                verify ? service.submitVerify(lastCircuit, lastPublic,
                                              lastProof, ropt)
                       : service.submitProve(item.id, w.publicInputs,
                                             w.privateInputs, ropt);
            r = ticket.result.get();
            if (r.status != serve::Status::QueueFull)
                break;
            stats.queueFullRetries++;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        recordOutcome(stats, r.status, verify, r.valid,
                      wallNow() - t0);
        if (!verify && r.status == serve::Status::Ok) {
            lastProof = std::move(r.proof);
            lastPublic = w.publicInputs;
            lastCircuit = item.id;
        }
    }
}

void
clientLoopSocket(const std::vector<MixItem>& mix, const Options& opt,
                 RunControl& ctl, std::size_t index,
                 ClientStats& stats, std::atomic<bool>& connect_failed)
{
    namespace wire = serve::wire;
    const int fd = wire::connectUnix(opt.socketPath);
    if (fd < 0) {
        connect_failed.store(true);
        return;
    }
    Rng rng(7001 + (u64)index);
    std::vector<std::uint8_t> lastProof;
    std::vector<std::uint8_t> lastPublic;
    std::string lastCircuit;
    std::uint64_t next_id = (std::uint64_t)index << 32;

    while (ctl.claim()) {
        const bool verify =
            wantVerify(rng, opt.verifyFrac, !lastProof.empty());
        const MixItem& item =
            mix[mix.size() == 1 ? 0 : rng.nextBelow(mix.size())];
        const Workload w =
            verify ? Workload{} : makeWorkload(rng, item);
        const double t0 = wallNow();
        wire::Result result;
        bool io_ok = true;
        while (true) {
            wire::Frame req;
            req.id = ++next_id;
            if (verify) {
                wire::VerifyRequest m;
                m.priority = serve::Priority::Batch;
                m.circuit = lastCircuit;
                m.publicInputs = lastPublic;
                m.proof = lastProof;
                req.type = wire::MsgType::VerifyRequest;
                req.body = wire::encodeVerifyRequest(m);
            } else {
                wire::ProveRequest m;
                m.circuit = item.id;
                m.publicInputs = w.publicInputs;
                m.privateInputs = w.privateInputs;
                req.type = wire::MsgType::ProveRequest;
                req.body = wire::encodeProveRequest(m);
            }
            wire::Frame resp;
            if (!wire::writeFrame(fd, req) ||
                !wire::readFrame(fd, resp) ||
                resp.type != wire::MsgType::Result) {
                io_ok = false;
                break;
            }
            auto decoded = wire::decodeResult(resp.body);
            if (!decoded) {
                io_ok = false;
                break;
            }
            result = std::move(*decoded);
            if (result.status != serve::Status::QueueFull)
                break;
            stats.queueFullRetries++;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        if (!io_ok) {
            stats.failures++;
            break;
        }
        recordOutcome(stats, result.status, verify, result.valid,
                      wallNow() - t0);
        if (!verify && result.status == serve::Status::Ok) {
            lastProof = std::move(result.proof);
            lastPublic = w.publicInputs;
            lastCircuit = item.id;
        }
    }
    ::close(fd);
}

/** Latency entries in the BENCH_kernels.json "results" schema. */
void
appendLatencyEntries(std::vector<KernelEntry>& entries,
                     const std::string& kind,
                     std::vector<double> samples, const Options& opt)
{
    if (samples.empty())
        return;
    std::sort(samples.begin(), samples.end());
    double sum = 0;
    for (double s : samples)
        sum += s;
    const struct
    {
        const char* suffix;
        double value;
    } rows[] = {
        {"p50", bench::percentile(samples, 0.50)},
        {"p95", bench::percentile(samples, 0.95)},
        {"p99", bench::percentile(samples, 0.99)},
        {"p999", bench::percentile(samples, 0.999)},
        {"mean", sum / (double)samples.size()},
    };
    for (const auto& row : rows) {
        KernelEntry e;
        e.name = "serve_" + kind + "_" + row.suffix;
        e.n = std::size_t(1) << opt.log2N;
        e.threads = opt.clients;
        e.repeats = (unsigned)samples.size();
        // Both fields carry the statistic: bench_compare diffs
        // seconds_min, and "min of repeats" has no analogue for a
        // percentile of a latency distribution.
        e.secondsMean = row.value;
        e.secondsMin = row.value;
        entries.push_back(std::move(e));
    }
}

/** One server-side lane's end-to-end quantiles, in seconds. */
struct ServerLane
{
    std::string kind;
    std::string priority;
    std::uint64_t count = 0;
    double p50 = 0, p99 = 0, p999 = 0;
};

/** Result of scraping the service's own telemetry. */
struct ServerScrape
{
    bool ok = false;
    std::uint64_t completed = 0;
    std::vector<ServerLane> lanes;
};

/** The lane with the most samples for @p kind (the bench issues one
 *  lane per kind: prove/interactive and verify/batch). */
const ServerLane*
pickLane(const ServerScrape& server, const char* kind)
{
    const ServerLane* best = nullptr;
    for (const auto& lane : server.lanes)
        if (lane.kind == kind &&
            (!best || lane.count > best->count))
            best = &lane;
    return best;
}

ServerScrape
scrapeInproc(const serve::ProofService& service)
{
    ServerScrape out;
    const serve::ServiceStatsSnapshot snap = service.snapshotStats();
    out.ok = true;
    out.completed = snap.completed;
    for (const auto& lane : snap.lanes) {
        ServerLane sl;
        sl.kind = serve::opKindName(lane.kind);
        sl.priority = serve::priorityName(lane.priority);
        sl.count = lane.e2eUs.count;
        sl.p50 = lane.e2eUs.quantile(0.50) / 1e6;
        sl.p99 = lane.e2eUs.quantile(0.99) / 1e6;
        sl.p999 = lane.e2eUs.quantile(0.999) / 1e6;
        out.lanes.push_back(std::move(sl));
    }
    return out;
}

// --- zkperf-serve-stats/2 field scanning -----------------------------------
// Ad-hoc tolerant scanning of the service's own JSON rendering, the
// same convention parseKernelBaseline uses for bench baselines: no
// general JSON parser, just field extraction from a known document.

std::string
findStringField(const std::string& obj, const char* key)
{
    const std::string pat = std::string("\"") + key + "\":\"";
    const auto p = obj.find(pat);
    if (p == std::string::npos)
        return "";
    const auto start = p + pat.size();
    const auto end = obj.find('"', start);
    return end == std::string::npos ? ""
                                    : obj.substr(start, end - start);
}

double
findNumberField(const std::string& obj, const char* key)
{
    const std::string pat = std::string("\"") + key + "\":";
    const auto p = obj.find(pat);
    if (p == std::string::npos)
        return 0;
    return std::atof(obj.c_str() + p + pat.size());
}

/** The balanced {...} sub-object value of @p key, or "" if absent. */
std::string
findObjectField(const std::string& obj, const char* key)
{
    const std::string pat = std::string("\"") + key + "\":{";
    const auto p = obj.find(pat);
    if (p == std::string::npos)
        return "";
    const auto start = p + pat.size() - 1;
    int depth = 0;
    for (std::size_t i = start; i < obj.size(); ++i) {
        if (obj[i] == '{') {
            ++depth;
        } else if (obj[i] == '}' && --depth == 0) {
            return obj.substr(start, i + 1 - start);
        }
    }
    return "";
}

ServerScrape
parseStatsV2Json(const std::string& json)
{
    ServerScrape out;
    if (findStringField(json, "schema") != "zkperf-serve-stats/2")
        return out;
    out.ok = true;
    out.completed = (std::uint64_t)findNumberField(
        findObjectField(json, "service"), "completed");

    const std::string lanesPat = "\"lanes\":[";
    auto p = json.find(lanesPat);
    if (p == std::string::npos)
        return out;
    p += lanesPat.size();
    while (p < json.size() && json[p] != ']') {
        if (json[p] != '{') {
            ++p;
            continue;
        }
        int depth = 0;
        std::size_t end = p;
        for (; end < json.size(); ++end) {
            if (json[end] == '{')
                ++depth;
            else if (json[end] == '}' && --depth == 0)
                break;
        }
        const std::string laneObj = json.substr(p, end + 1 - p);
        ServerLane sl;
        sl.kind = findStringField(laneObj, "kind");
        sl.priority = findStringField(laneObj, "priority");
        const std::string e2e = findObjectField(laneObj, "e2e_us");
        sl.count = (std::uint64_t)findNumberField(e2e, "count");
        sl.p50 = findNumberField(e2e, "p50") / 1e6;
        sl.p99 = findNumberField(e2e, "p99") / 1e6;
        sl.p999 = findNumberField(e2e, "p999") / 1e6;
        out.lanes.push_back(std::move(sl));
        p = end + 1;
    }
    return out;
}

/** Fetch the raw stats/v2 document from a running zkperfd. */
bool
scrapeStatsV2Socket(const std::string& path, std::string& jsonOut)
{
    namespace wire = serve::wire;
    const int fd = wire::connectUnix(path);
    if (fd < 0)
        return false;
    wire::Frame req;
    req.type = wire::MsgType::StatsV2Request;
    req.id = 1;
    wire::Frame resp;
    const bool io_ok = wire::writeFrame(fd, req) &&
                       wire::readFrame(fd, resp) &&
                       resp.type == wire::MsgType::StatsV2Response;
    ::close(fd);
    if (!io_ok)
        return false;
    auto decoded = wire::decodeStatsV2Response(resp.body);
    if (!decoded)
        return false;
    jsonOut = std::move(decoded->json);
    return true;
}

/** serve_server_* entries: the daemon's own tail quantiles. */
void
appendServerEntries(std::vector<KernelEntry>& entries,
                    const ServerScrape& server, const Options& opt)
{
    for (const char* kind : {"prove", "verify"}) {
        const ServerLane* lane = pickLane(server, kind);
        if (!lane || lane->count == 0)
            continue;
        const struct
        {
            const char* suffix;
            double value;
        } rows[] = {
            {"p50", lane->p50},
            {"p99", lane->p99},
            {"p999", lane->p999},
        };
        for (const auto& row : rows) {
            KernelEntry e;
            e.name =
                std::string("serve_server_") + kind + "_" + row.suffix;
            e.n = std::size_t(1) << opt.log2N;
            e.threads = opt.clients;
            e.repeats = (unsigned)lane->count;
            e.secondsMean = row.value;
            e.secondsMin = row.value;
            entries.push_back(std::move(e));
        }
    }
}

/**
 * Server-vs-client latency agreement gate (see the file comment for
 * the tolerance rationale). Only meaningful when every request
 * completed: failures break the 1:1 pairing between client-observed
 * windows and server lifecycle records. Returns the violation count.
 */
int
crossCheckServer(const ServerScrape& server,
                 std::vector<double> proveSorted,
                 std::vector<double> verifySorted)
{
    int violations = 0;
    std::sort(proveSorted.begin(), proveSorted.end());
    std::sort(verifySorted.begin(), verifySorted.end());
    for (const char* kind : {"prove", "verify"}) {
        const auto& client = std::strcmp(kind, "prove") == 0
                                 ? proveSorted
                                 : verifySorted;
        const ServerLane* lane = pickLane(server, kind);
        if (client.empty() || !lane || lane->count == 0)
            continue;
        const double clientP50 = bench::percentile(client, 0.50);
        const double limit = clientP50 * 2.0 + 0.010;
        std::printf("bench_serve: cross-check %s: server p50=%.6fs "
                    "client p50=%.6fs (limit %.6fs)\n",
                    kind, lane->p50, clientP50, limit);
        if (lane->p50 > limit) {
            std::fprintf(
                stderr,
                "bench_serve: FAILED cross-check — server-side %s "
                "p50 %.6fs exceeds client-observed p50 %.6fs beyond "
                "tolerance (2x + 10ms); the server-side lifespan is "
                "a strict subset of the client window, so this "
                "indicates a clock or accounting bug\n",
                kind, lane->p50, clientP50);
            ++violations;
        }
    }
    return violations;
}

std::string
serveJson(const Options& opt, const std::string& circuit,
          const ClientStats& total, double elapsed,
          const std::vector<KernelEntry>& entries)
{
    char buf[512];
    std::string json = "{\n  \"bench\": \"bench_serve\",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"config\": {\"mode\": \"%s\", \"circuit\": \"%s\", "
        "\"log2_constraints\": %zu, \"clients\": %zu, "
        "\"verify_frac\": %.3f},\n",
        opt.socketPath.empty() ? "inproc" : "socket",
        circuit.c_str(), opt.log2N, opt.clients, opt.verifyFrac);
    json += buf;
    const double rps =
        elapsed > 0 ? (double)total.completed / elapsed : 0;
    std::snprintf(
        buf, sizeof(buf),
        "  \"serve\": {\"completed\": %llu, \"failed\": %llu, "
        "\"queue_full_retries\": %llu, \"elapsed_seconds\": %.3f, "
        "\"throughput_rps\": %.3f},\n",
        (unsigned long long)total.completed,
        (unsigned long long)total.failures,
        (unsigned long long)total.queueFullRetries, elapsed, rps);
    json += buf;
    json += "  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"n\": %zu, "
                      "\"threads\": %zu, \"repeats\": %u, "
                      "\"seconds_mean\": %.6f, "
                      "\"seconds_min\": %.6f}%s\n",
                      e.name.c_str(), e.n, e.threads, e.repeats,
                      e.secondsMean, e.secondsMin,
                      i + 1 < entries.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";
    return json;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    bool smoke = false;
    bool log2_given = false, requests_given = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char* flag) -> const char* {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (const char* v = value("--clients")) {
            opt.clients = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--seconds")) {
            opt.seconds = std::atof(v);
        } else if (const char* v = value("--requests")) {
            opt.requests = (std::uint64_t)std::atoll(v);
            requests_given = true;
        } else if (const char* v = value("--log2")) {
            opt.log2N = (std::size_t)std::atoi(v);
            log2_given = true;
        } else if (const char* v = value("--circuit")) {
            opt.circuitSpecs.emplace_back(v);
        } else if (const char* v = value("--verify-frac")) {
            opt.verifyFrac = std::atof(v);
        } else if (const char* v = value("--workers")) {
            opt.workers = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--queue")) {
            opt.queue = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--prove-threads")) {
            opt.proveThreads = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--socket")) {
            opt.socketPath = v;
        } else if (const char* v = value("--out")) {
            opt.outPath = v;
        } else if (const char* v = value("--stats-dump")) {
            opt.statsDumpPath = v;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return usage(argv[0]);
        }
    }
    if (smoke) {
        if (!requests_given)
            opt.requests = 200;
        if (!log2_given)
            opt.log2N = 8;
    }
    if (opt.clients == 0 || opt.log2N < 1 || opt.log2N > 22 ||
        opt.verifyFrac < 0 || opt.verifyFrac > 1) {
        std::fprintf(stderr, "invalid option values\n");
        return usage(argv[0]);
    }

    if (!opt.statsDumpPath.empty()) {
        if (opt.socketPath.empty()) {
            std::fprintf(stderr,
                         "--stats-dump requires --socket <path>\n");
            return usage(argv[0]);
        }
        std::string json;
        if (!scrapeStatsV2Socket(opt.socketPath, json)) {
            std::fprintf(stderr,
                         "bench_serve: stats/v2 scrape of %s failed\n",
                         opt.socketPath.c_str());
            return 1;
        }
        if (!bench::writeKernelJson(opt.statsDumpPath, json)) {
            std::fprintf(stderr, "bench_serve: cannot write %s\n",
                         opt.statsDumpPath.c_str());
            return 1;
        }
        std::printf("bench_serve: wrote stats/v2 snapshot to %s\n",
                    opt.statsDumpPath.c_str());
        return 0;
    }

    std::vector<MixItem> mix;
    if (!resolveMix(opt, mix))
        return usage(argv[0]);
    std::string mix_label;
    for (const auto& item : mix)
        mix_label += (mix_label.empty() ? "" : ",") + item.id;

    std::printf("bench_serve: %s mode, circuits=%s clients=%zu %s "
                "verify_frac=%.2f\n",
                opt.socketPath.empty() ? "in-process" : "socket",
                mix_label.c_str(), opt.clients,
                opt.requests
                    ? (std::string("requests=") +
                       std::to_string(opt.requests))
                          .c_str()
                    : (std::string("seconds=") +
                       std::to_string(opt.seconds))
                          .c_str(),
                opt.verifyFrac);
    std::fflush(stdout);

    RunControl ctl;
    ctl.requestLimit = opt.requests;
    std::vector<ClientStats> stats(opt.clients);
    std::vector<std::thread> clients;
    std::atomic<bool> connect_failed{false};
    double t_start = 0, elapsed = 0;
    ServerScrape server;

    if (opt.socketPath.empty()) {
        serve::ServiceConfig cfg;
        cfg.workers = opt.workers;
        cfg.queueCapacity = opt.queue;
        cfg.proveThreads = opt.proveThreads;
        serve::ProofService service(cfg);
        for (const auto& item : mix) {
            service.registerCircuit(serve::makeZooHost<snark::Bn254>(
                item.id, item.entry->name, item.scale, 2024,
                service.config().proveThreads));
            service.prewarm(item.id);
        }
        std::printf("bench_serve: workers=%zu queue=%zu "
                    "prove-threads=%zu (keys prewarmed)\n",
                    service.config().workers,
                    service.config().queueCapacity,
                    service.config().proveThreads);
        std::fflush(stdout);

        t_start = wallNow();
        for (std::size_t c = 0; c < opt.clients; ++c)
            clients.emplace_back([&, c] {
                clientLoopInproc(service, mix, opt, ctl, c,
                                 stats[c]);
            });
        if (opt.requests == 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opt.seconds));
            ctl.stop.store(true);
        }
        for (auto& t : clients)
            t.join();
        elapsed = wallNow() - t_start;
        service.drain();
        server = scrapeInproc(service);
    } else {
        // A daemon that died mid-exchange must yield an EPIPE write
        // error (counted as a failure), not kill the load generator.
        std::signal(SIGPIPE, SIG_IGN);
        t_start = wallNow();
        for (std::size_t c = 0; c < opt.clients; ++c)
            clients.emplace_back([&, c] {
                clientLoopSocket(mix, opt, ctl, c, stats[c],
                                 connect_failed);
            });
        if (opt.requests == 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opt.seconds));
            ctl.stop.store(true);
        }
        for (auto& t : clients)
            t.join();
        elapsed = wallNow() - t_start;
        if (connect_failed.load()) {
            std::fprintf(stderr,
                         "bench_serve: cannot connect to %s\n",
                         opt.socketPath.c_str());
            return 1;
        }
        std::string server_json;
        if (scrapeStatsV2Socket(opt.socketPath, server_json))
            server = parseStatsV2Json(server_json);
        if (!server.ok)
            std::fprintf(stderr,
                         "bench_serve: warning — stats/v2 scrape of "
                         "%s failed; no server-side entries\n",
                         opt.socketPath.c_str());
    }

    ClientStats total;
    for (const auto& s : stats) {
        total.proveLatency.insert(total.proveLatency.end(),
                                  s.proveLatency.begin(),
                                  s.proveLatency.end());
        total.verifyLatency.insert(total.verifyLatency.end(),
                                   s.verifyLatency.begin(),
                                   s.verifyLatency.end());
        total.queueFullRetries += s.queueFullRetries;
        total.failures += s.failures;
        total.completed += s.completed;
    }

    std::vector<KernelEntry> entries;
    appendLatencyEntries(entries, "prove", total.proveLatency, opt);
    appendLatencyEntries(entries, "verify", total.verifyLatency, opt);
    // Per-priority breakdown. The load mix is fixed — proves are
    // Interactive, verifies are Batch — so the per-priority series
    // are the per-kind series under their scheduling-class names,
    // letting a baseline diff catch a priority-inversion regression
    // by name.
    appendLatencyEntries(entries, "prove_interactive",
                         total.proveLatency, opt);
    appendLatencyEntries(entries, "verify_batch", total.verifyLatency,
                         opt);
    appendServerEntries(entries, server, opt);

    TextTable table;
    table.setHeader(
        {"kind", "count", "p50", "p95", "p99", "p999", "mean"});
    for (const char* kind : {"prove", "verify"}) {
        auto samples = std::strcmp(kind, "prove") == 0
                           ? total.proveLatency
                           : total.verifyLatency;
        if (samples.empty())
            continue;
        std::sort(samples.begin(), samples.end());
        double sum = 0;
        for (double s : samples)
            sum += s;
        table.addRow({kind, std::to_string(samples.size()),
                      fmtSeconds(bench::percentile(samples, 0.50)),
                      fmtSeconds(bench::percentile(samples, 0.95)),
                      fmtSeconds(bench::percentile(samples, 0.99)),
                      fmtSeconds(bench::percentile(samples, 0.999)),
                      fmtSeconds(sum / (double)samples.size())});
    }
    bench::printTable("serve latency (closed loop)", table);
    if (server.ok) {
        TextTable stable;
        stable.setHeader(
            {"server lane", "count", "p50", "p99", "p999"});
        for (const auto& lane : server.lanes) {
            if (lane.count == 0)
                continue;
            stable.addRow({lane.kind + "/" + lane.priority,
                           std::to_string(lane.count),
                           fmtSeconds(lane.p50), fmtSeconds(lane.p99),
                           fmtSeconds(lane.p999)});
        }
        bench::printTable("serve latency (server lifecycle)", stable);
    }
    std::printf("bench_serve: completed=%llu failed=%llu "
                "queue_full_retries=%llu elapsed=%.2fs "
                "throughput=%.2f req/s\n",
                (unsigned long long)total.completed,
                (unsigned long long)total.failures,
                (unsigned long long)total.queueFullRetries, elapsed,
                elapsed > 0 ? (double)total.completed / elapsed : 0);

    const std::string json =
        serveJson(opt, mix_label, total, elapsed, entries);
    if (!bench::writeKernelJson(opt.outPath, json)) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     opt.outPath.c_str());
        return 1;
    }
    std::printf("bench_serve: wrote %s\n", opt.outPath.c_str());

    if (total.failures > 0) {
        std::fprintf(stderr,
                     "bench_serve: FAILED — %llu request(s) did not "
                     "complete successfully\n",
                     (unsigned long long)total.failures);
        return 1;
    }
    if (server.ok &&
        crossCheckServer(server, total.proveLatency,
                         total.verifyLatency) > 0)
        return 1;
    return 0;
}
