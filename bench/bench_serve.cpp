/**
 * @file
 * Closed-loop load generator for the proof-serving subsystem.
 *
 * Each client thread issues one request at a time (closed loop) and
 * waits for the result: proves at --verify-frac=0 or a mix where a
 * fraction of iterations re-submit the client's latest proof as a
 * Batch-priority verify (exercising priority scheduling and the
 * opportunistic verifyBatch path). QueueFull responses are counted
 * and retried after a short backoff — backpressure, not failure.
 *
 * Modes:
 *   default      in-process ProofService (no daemon needed)
 *   --socket P   wire client against a running zkperfd at path P
 *
 * Run: ./build/bench/bench_serve [--clients <n>] [--seconds <s>]
 *          [--requests <n>] [--log2 <k>] [--verify-frac <f>]
 *          [--workers <n>] [--queue <n>] [--prove-threads <n>]
 *          [--socket <path>] [--out <file>] [--smoke]
 *
 *   --smoke      CI shape: 200 requests total at 2^8 constraints
 *                (explicit --requests/--log2 still win)
 *
 * Reports p50/p95/p99/mean latency per request kind plus throughput,
 * and writes BENCH_serve.json whose "results" array uses the
 * BENCH_kernels.json entry schema, so `bench_compare --against` can
 * diff two serving runs. Exits 1 if any request failed (a rejected
 * proof, an invalid verify, or a non-Ok terminal status), 2 on usage
 * errors.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kernels_common.h"
#include "serve/circuit_host.h"
#include "serve/protocol.h"
#include "serve/service.h"

#include <unistd.h>

namespace {

using namespace zkp;
using bench::KernelEntry;

struct Options
{
    std::size_t clients = 8;
    double seconds = 10;
    std::uint64_t requests = 0; // 0 = run for --seconds
    std::size_t log2N = 12;
    double verifyFrac = 0.25;
    std::size_t workers = 0;
    std::size_t queue = 0;
    std::size_t proveThreads = 0;
    std::string socketPath; // empty = in-process
    std::string outPath = "BENCH_serve.json";
};

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--clients <n>] [--seconds <s>] [--requests <n>]\n"
        "          [--log2 <k>] [--verify-frac <f>] [--workers <n>]\n"
        "          [--queue <n>] [--prove-threads <n>]\n"
        "          [--socket <path>] [--out <file>] [--smoke]\n",
        argv0);
    return 2;
}

/** Per-client tallies; merged after the threads join. */
struct ClientStats
{
    std::vector<double> proveLatency;
    std::vector<double> verifyLatency;
    std::uint64_t queueFullRetries = 0;
    std::uint64_t failures = 0;
    std::uint64_t completed = 0;
};

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Shared run controls: time-based or fixed-count stop. */
struct RunControl
{
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> issued{0};
    std::uint64_t requestLimit = 0; // 0 = stop flag only

    bool
    claim()
    {
        if (stop.load(std::memory_order_relaxed))
            return false;
        if (requestLimit == 0)
            return true;
        return issued.fetch_add(1, std::memory_order_relaxed) <
               requestLimit;
    }
};

/** One client iteration's generated workload. */
struct Workload
{
    std::vector<std::uint8_t> publicInputs;
    std::vector<std::uint8_t> privateInputs;
};

template <typename Curve>
Workload
makeWorkload(Rng& rng, std::size_t constraints)
{
    using Fr = typename Curve::Fr;
    const Fr x = Fr::random(rng);
    const Fr y = x.pow(BigInt<1>((u64)constraints));
    Workload w;
    w.publicInputs = serve::encodeScalars<Fr>({y});
    w.privateInputs = serve::encodeScalars<Fr>({x});
    return w;
}

/** True on the verify-frac schedule (deterministic per client). */
bool
wantVerify(Rng& rng, double frac, bool haveProof)
{
    if (!haveProof || frac <= 0)
        return false;
    return (double)rng.nextBelow(1 << 20) / (double)(1 << 20) < frac;
}

void
recordOutcome(ClientStats& stats, serve::Status status, bool is_verify,
              bool valid, double latency)
{
    if (status == serve::Status::Ok && (!is_verify || valid)) {
        stats.completed++;
        (is_verify ? stats.verifyLatency : stats.proveLatency)
            .push_back(latency);
    } else {
        stats.failures++;
    }
}

void
clientLoopInproc(serve::ProofService& service,
                 const std::string& circuit, const Options& opt,
                 RunControl& ctl, std::size_t index,
                 ClientStats& stats)
{
    Rng rng(7001 + (u64)index);
    std::vector<std::uint8_t> lastProof;
    std::vector<std::uint8_t> lastPublic;
    const std::size_t constraints = std::size_t(1) << opt.log2N;

    while (ctl.claim()) {
        const bool verify =
            wantVerify(rng, opt.verifyFrac, !lastProof.empty());
        const Workload w =
            verify ? Workload{} : makeWorkload<snark::Bn254>(
                                      rng, constraints);
        const double t0 = wallNow();
        serve::Response r;
        while (true) {
            serve::RequestOptions ropt;
            ropt.priority = verify ? serve::Priority::Batch
                                   : serve::Priority::Interactive;
            auto ticket =
                verify ? service.submitVerify(circuit, lastPublic,
                                              lastProof, ropt)
                       : service.submitProve(circuit, w.publicInputs,
                                             w.privateInputs, ropt);
            r = ticket.result.get();
            if (r.status != serve::Status::QueueFull)
                break;
            stats.queueFullRetries++;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        recordOutcome(stats, r.status, verify, r.valid,
                      wallNow() - t0);
        if (!verify && r.status == serve::Status::Ok) {
            lastProof = std::move(r.proof);
            lastPublic = w.publicInputs;
        }
    }
}

void
clientLoopSocket(const std::string& circuit, const Options& opt,
                 RunControl& ctl, std::size_t index,
                 ClientStats& stats, std::atomic<bool>& connect_failed)
{
    namespace wire = serve::wire;
    const int fd = wire::connectUnix(opt.socketPath);
    if (fd < 0) {
        connect_failed.store(true);
        return;
    }
    Rng rng(7001 + (u64)index);
    std::vector<std::uint8_t> lastProof;
    std::vector<std::uint8_t> lastPublic;
    const std::size_t constraints = std::size_t(1) << opt.log2N;
    std::uint64_t next_id = (std::uint64_t)index << 32;

    while (ctl.claim()) {
        const bool verify =
            wantVerify(rng, opt.verifyFrac, !lastProof.empty());
        const Workload w =
            verify ? Workload{} : makeWorkload<snark::Bn254>(
                                      rng, constraints);
        const double t0 = wallNow();
        wire::Result result;
        bool io_ok = true;
        while (true) {
            wire::Frame req;
            req.id = ++next_id;
            if (verify) {
                wire::VerifyRequest m;
                m.priority = serve::Priority::Batch;
                m.circuit = circuit;
                m.publicInputs = lastPublic;
                m.proof = lastProof;
                req.type = wire::MsgType::VerifyRequest;
                req.body = wire::encodeVerifyRequest(m);
            } else {
                wire::ProveRequest m;
                m.circuit = circuit;
                m.publicInputs = w.publicInputs;
                m.privateInputs = w.privateInputs;
                req.type = wire::MsgType::ProveRequest;
                req.body = wire::encodeProveRequest(m);
            }
            wire::Frame resp;
            if (!wire::writeFrame(fd, req) ||
                !wire::readFrame(fd, resp) ||
                resp.type != wire::MsgType::Result) {
                io_ok = false;
                break;
            }
            auto decoded = wire::decodeResult(resp.body);
            if (!decoded) {
                io_ok = false;
                break;
            }
            result = std::move(*decoded);
            if (result.status != serve::Status::QueueFull)
                break;
            stats.queueFullRetries++;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        if (!io_ok) {
            stats.failures++;
            break;
        }
        recordOutcome(stats, result.status, verify, result.valid,
                      wallNow() - t0);
        if (!verify && result.status == serve::Status::Ok) {
            lastProof = std::move(result.proof);
            lastPublic = w.publicInputs;
        }
    }
    ::close(fd);
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double idx = q * (double)(sorted.size() - 1);
    const std::size_t lo = (std::size_t)idx;
    const std::size_t hi =
        lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = idx - (double)lo;
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

/** Latency entries in the BENCH_kernels.json "results" schema. */
void
appendLatencyEntries(std::vector<KernelEntry>& entries,
                     const std::string& kind,
                     std::vector<double> samples, const Options& opt)
{
    if (samples.empty())
        return;
    std::sort(samples.begin(), samples.end());
    double sum = 0;
    for (double s : samples)
        sum += s;
    const struct
    {
        const char* suffix;
        double value;
    } rows[] = {
        {"p50", percentile(samples, 0.50)},
        {"p95", percentile(samples, 0.95)},
        {"p99", percentile(samples, 0.99)},
        {"mean", sum / (double)samples.size()},
    };
    for (const auto& row : rows) {
        KernelEntry e;
        e.name = "serve_" + kind + "_" + row.suffix;
        e.n = std::size_t(1) << opt.log2N;
        e.threads = opt.clients;
        e.repeats = (unsigned)samples.size();
        // Both fields carry the statistic: bench_compare diffs
        // seconds_min, and "min of repeats" has no analogue for a
        // percentile of a latency distribution.
        e.secondsMean = row.value;
        e.secondsMin = row.value;
        entries.push_back(std::move(e));
    }
}

std::string
serveJson(const Options& opt, const std::string& circuit,
          const ClientStats& total, double elapsed,
          const std::vector<KernelEntry>& entries)
{
    char buf[512];
    std::string json = "{\n  \"bench\": \"bench_serve\",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"config\": {\"mode\": \"%s\", \"circuit\": \"%s\", "
        "\"log2_constraints\": %zu, \"clients\": %zu, "
        "\"verify_frac\": %.3f},\n",
        opt.socketPath.empty() ? "inproc" : "socket",
        circuit.c_str(), opt.log2N, opt.clients, opt.verifyFrac);
    json += buf;
    const double rps =
        elapsed > 0 ? (double)total.completed / elapsed : 0;
    std::snprintf(
        buf, sizeof(buf),
        "  \"serve\": {\"completed\": %llu, \"failed\": %llu, "
        "\"queue_full_retries\": %llu, \"elapsed_seconds\": %.3f, "
        "\"throughput_rps\": %.3f},\n",
        (unsigned long long)total.completed,
        (unsigned long long)total.failures,
        (unsigned long long)total.queueFullRetries, elapsed, rps);
    json += buf;
    json += "  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"n\": %zu, "
                      "\"threads\": %zu, \"repeats\": %u, "
                      "\"seconds_mean\": %.6f, "
                      "\"seconds_min\": %.6f}%s\n",
                      e.name.c_str(), e.n, e.threads, e.repeats,
                      e.secondsMean, e.secondsMin,
                      i + 1 < entries.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";
    return json;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    bool smoke = false;
    bool log2_given = false, requests_given = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char* flag) -> const char* {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (const char* v = value("--clients")) {
            opt.clients = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--seconds")) {
            opt.seconds = std::atof(v);
        } else if (const char* v = value("--requests")) {
            opt.requests = (std::uint64_t)std::atoll(v);
            requests_given = true;
        } else if (const char* v = value("--log2")) {
            opt.log2N = (std::size_t)std::atoi(v);
            log2_given = true;
        } else if (const char* v = value("--verify-frac")) {
            opt.verifyFrac = std::atof(v);
        } else if (const char* v = value("--workers")) {
            opt.workers = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--queue")) {
            opt.queue = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--prove-threads")) {
            opt.proveThreads = (std::size_t)std::atoi(v);
        } else if (const char* v = value("--socket")) {
            opt.socketPath = v;
        } else if (const char* v = value("--out")) {
            opt.outPath = v;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return usage(argv[0]);
        }
    }
    if (smoke) {
        if (!requests_given)
            opt.requests = 200;
        if (!log2_given)
            opt.log2N = 8;
    }
    if (opt.clients == 0 || opt.log2N < 1 || opt.log2N > 22 ||
        opt.verifyFrac < 0 || opt.verifyFrac > 1) {
        std::fprintf(stderr, "invalid option values\n");
        return usage(argv[0]);
    }

    char circuit_name[32];
    std::snprintf(circuit_name, sizeof(circuit_name), "exp%zu",
                  opt.log2N);
    const std::string circuit = circuit_name;

    std::printf("bench_serve: %s mode, circuit=%s clients=%zu %s "
                "verify_frac=%.2f\n",
                opt.socketPath.empty() ? "in-process" : "socket",
                circuit.c_str(), opt.clients,
                opt.requests
                    ? (std::string("requests=") +
                       std::to_string(opt.requests))
                          .c_str()
                    : (std::string("seconds=") +
                       std::to_string(opt.seconds))
                          .c_str(),
                opt.verifyFrac);
    std::fflush(stdout);

    RunControl ctl;
    ctl.requestLimit = opt.requests;
    std::vector<ClientStats> stats(opt.clients);
    std::vector<std::thread> clients;
    std::atomic<bool> connect_failed{false};
    double t_start = 0, elapsed = 0;

    if (opt.socketPath.empty()) {
        serve::ServiceConfig cfg;
        cfg.workers = opt.workers;
        cfg.queueCapacity = opt.queue;
        cfg.proveThreads = opt.proveThreads;
        serve::ProofService service(cfg);
        service.registerCircuit(
            serve::makeExponentiationHost<snark::Bn254>(
                circuit, std::size_t(1) << opt.log2N, 2024,
                service.config().proveThreads));
        service.prewarm(circuit);
        std::printf("bench_serve: workers=%zu queue=%zu "
                    "prove-threads=%zu (keys prewarmed)\n",
                    service.config().workers,
                    service.config().queueCapacity,
                    service.config().proveThreads);
        std::fflush(stdout);

        t_start = wallNow();
        for (std::size_t c = 0; c < opt.clients; ++c)
            clients.emplace_back([&, c] {
                clientLoopInproc(service, circuit, opt, ctl, c,
                                 stats[c]);
            });
        if (opt.requests == 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opt.seconds));
            ctl.stop.store(true);
        }
        for (auto& t : clients)
            t.join();
        elapsed = wallNow() - t_start;
        service.drain();
    } else {
        // A daemon that died mid-exchange must yield an EPIPE write
        // error (counted as a failure), not kill the load generator.
        std::signal(SIGPIPE, SIG_IGN);
        t_start = wallNow();
        for (std::size_t c = 0; c < opt.clients; ++c)
            clients.emplace_back([&, c] {
                clientLoopSocket(circuit, opt, ctl, c, stats[c],
                                 connect_failed);
            });
        if (opt.requests == 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opt.seconds));
            ctl.stop.store(true);
        }
        for (auto& t : clients)
            t.join();
        elapsed = wallNow() - t_start;
        if (connect_failed.load()) {
            std::fprintf(stderr,
                         "bench_serve: cannot connect to %s\n",
                         opt.socketPath.c_str());
            return 1;
        }
    }

    ClientStats total;
    for (const auto& s : stats) {
        total.proveLatency.insert(total.proveLatency.end(),
                                  s.proveLatency.begin(),
                                  s.proveLatency.end());
        total.verifyLatency.insert(total.verifyLatency.end(),
                                   s.verifyLatency.begin(),
                                   s.verifyLatency.end());
        total.queueFullRetries += s.queueFullRetries;
        total.failures += s.failures;
        total.completed += s.completed;
    }

    std::vector<KernelEntry> entries;
    appendLatencyEntries(entries, "prove", total.proveLatency, opt);
    appendLatencyEntries(entries, "verify", total.verifyLatency, opt);

    TextTable table;
    table.setHeader(
        {"kind", "count", "p50", "p95", "p99", "mean"});
    for (const char* kind : {"prove", "verify"}) {
        auto samples = std::strcmp(kind, "prove") == 0
                           ? total.proveLatency
                           : total.verifyLatency;
        if (samples.empty())
            continue;
        std::sort(samples.begin(), samples.end());
        double sum = 0;
        for (double s : samples)
            sum += s;
        table.addRow({kind, std::to_string(samples.size()),
                      fmtSeconds(percentile(samples, 0.50)),
                      fmtSeconds(percentile(samples, 0.95)),
                      fmtSeconds(percentile(samples, 0.99)),
                      fmtSeconds(sum / (double)samples.size())});
    }
    bench::printTable("serve latency (closed loop)", table);
    std::printf("bench_serve: completed=%llu failed=%llu "
                "queue_full_retries=%llu elapsed=%.2fs "
                "throughput=%.2f req/s\n",
                (unsigned long long)total.completed,
                (unsigned long long)total.failures,
                (unsigned long long)total.queueFullRetries, elapsed,
                elapsed > 0 ? (double)total.completed / elapsed : 0);

    const std::string json =
        serveJson(opt, circuit, total, elapsed, entries);
    if (!bench::writeKernelJson(opt.outPath, json)) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     opt.outPath.c_str());
        return 1;
    }
    std::printf("bench_serve: wrote %s\n", opt.outPath.c_str());

    if (total.failures > 0) {
        std::fprintf(stderr,
                     "bench_serve: FAILED — %llu request(s) did not "
                     "complete successfully\n",
                     (unsigned long long)total.failures);
        return 1;
    }
    return 0;
}
