/**
 * @file
 * Ablations of design choices called out in DESIGN.md §6:
 *   A1  Pippenger vs naive double-and-add MSM (proving-cost driver)
 *   A2  Pippenger window width sweep
 *   A3  cache-simulator sampling mask vs MPKI stability
 *   A4  instrumentation overhead (counting on is the build default;
 *       this quantifies the probe cost against an uncounted loop)
 */

#include "bench_util.h"
#include "core/pipeline.h"
#include "ec/msm.h"

namespace zkp::bench {
namespace {

using Fr = ff::bn254::Fr;
using G1 = ec::Bn254G1;

void
ablationMsm()
{
    Rng rng(11);
    typename G1::Jacobian g{G1::generator()};
    const std::size_t n = 1 << 10;
    std::vector<typename G1::Affine> pts;
    std::vector<Fr::Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(1 << 16) + 1)
                          .toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }

    Timer t_naive;
    auto r1 = ec::msmNaive<typename G1::Jacobian>(pts.data(),
                                                  scalars.data(), n);
    double naive = t_naive.seconds();

    Timer t_pip;
    auto r2 = ec::msm<typename G1::Jacobian>(pts.data(), scalars.data(),
                                             n);
    double pip = t_pip.seconds();

    TextTable table;
    table.setHeader({"algorithm", "time", "speedup vs naive"});
    table.addRow({"naive double-and-add", fmtSeconds(naive), "1.00x"});
    table.addRow({"Pippenger (auto window)", fmtSeconds(pip),
                  fmtF(naive / pip, 2) + "x"});
    printTable("A1 MSM algorithm (n=2^10, BN254 G1)", table);

    if (r1 != r2)
        std::printf("!! ablation MSM results disagree\n");
}

void
ablationSampling()
{
    TextTable table;
    table.setHeader({"sample mask", "traced accesses", "witness MPKI",
                     "proving MPKI"});
    for (sim::u32 mask : {0u, 1u, 3u, 7u}) {
        core::SweepConfig cfg;
        cfg.sizes = {1 << 11};
        cfg.sampleMask = mask;
        auto cells = core::runMemoryAnalysis<snark::Bn254>(cfg);
        double witness = 0, proving = 0;
        for (const auto& c : cells) {
            if (c.perCpu.empty())
                continue;
            if (c.stage == core::Stage::Witness)
                witness = c.perCpu[2].mpki; // i9
            if (c.stage == core::Stage::Proving)
                proving = c.perCpu[2].mpki;
        }
        table.addRow({std::to_string(mask),
                      "1/" + std::to_string(mask + 1),
                      fmtF(witness, 4), fmtF(proving, 4)});
    }
    printTable("A3 trace sampling vs MPKI (i9 model, n=2^11)", table);
}

void
ablationProbeCost()
{
    // Field multiplication with counting (always on in this library)
    // vs the raw kernel cost approximated by subtracting a counting-
    // only loop.
    Rng rng(12);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    const std::size_t iters = 2'000'000;

    Timer t_mul;
    for (std::size_t i = 0; i < iters; ++i)
        a = a * b;
    double with_count = t_mul.nanos() / iters;

    Timer t_count;
    for (std::size_t i = 0; i < iters; ++i)
        sim::count(sim::PrimOp::FieldMul, 4);
    double count_only = t_count.nanos() / iters;

    TextTable table;
    table.setHeader({"what", "ns/op"});
    table.addRow({"field mul incl. counting", fmtF(with_count, 2)});
    table.addRow({"counting alone", fmtF(count_only, 2)});
    table.addRow({"probe overhead",
                  fmtPct(count_only / with_count, 1)});
    printTable("A4 instrumentation probe cost (BN254 Fq mul)", table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_ablation: design-choice ablations\n");
    zkp::bench::ablationMsm();
    zkp::bench::ablationSampling();
    zkp::bench::ablationProbeCost();
    return 0;
}
