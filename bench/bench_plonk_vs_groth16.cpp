/**
 * @file
 * E11 — proving-scheme comparison (paper §IV-A): snarkjs supports
 * Groth16 and PlonK, and the paper justifies choosing Groth16 partly
 * because "the proving time of PlonK is twice as slow compared to
 * Groth16". This bench measures both provers of this library on the
 * same exponentiation workload.
 */

#include "bench_util.h"
#include "core/pipeline.h"
#include "snark/plonk.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    using Fr = typename Curve::Fr;
    using G = snark::Groth16<Curve>;
    using P = snark::Plonk<Curve>;

    TextTable table;
    table.setHeader({"constraints", "groth16 prove", "plonk prove",
                     "ratio", "groth16 verify", "plonk verify"});

    for (std::size_t n : sweepSizes()) {
        Rng rng(2024);
        Fr x = Fr::random(rng);

        // Groth16 pipeline.
        r1cs::ExponentiationCircuit<Fr> gcirc(n);
        auto cs = gcirc.builder.compile();
        r1cs::WitnessCalculator<Fr> calc(
            gcirc.builder.witnessProgram());
        auto gkeys = G::setup(cs, rng);
        Fr y = gcirc.evaluate(x);
        auto z = calc.compute({y}, {x});

        Timer tg;
        auto gproof = G::prove(gkeys.pk, cs, z, rng);
        const double groth_prove = tg.lap();
        bool gok = G::verify(gkeys.vk, {y}, gproof);
        const double groth_verify = tg.seconds();

        // PlonK pipeline on the same statement.
        snark::PlonkExponentiation<Fr> pcirc(n);
        auto pkeys = P::setup(pcirc.builder, rng);
        auto values = pcirc.assign(x);

        Timer tp;
        auto pproof = P::prove(pkeys.pk, values, {y}, rng);
        const double plonk_prove = tp.lap();
        bool pok = P::verify(pkeys.vk, {y}, pproof);
        const double plonk_verify = tp.seconds();

        if (!gok || !pok)
            std::printf("!! verification failed at n=%zu\n", n);

        table.addRow({"2^" + std::to_string(log2Of(n)),
                      fmtSeconds(groth_prove),
                      fmtSeconds(plonk_prove),
                      fmtF(plonk_prove / groth_prove, 2) + "x",
                      fmtSeconds(groth_verify),
                      fmtSeconds(plonk_verify)});
    }
    printTable(std::string("PlonK vs Groth16 proving time, ") +
                   Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_plonk_vs_groth16: the paper's scheme-selection "
                "datum (PlonK proving ~2x Groth16)\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    return 0;
}
