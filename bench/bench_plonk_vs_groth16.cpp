/**
 * @file
 * E11/E13 — proving-scheme comparison (paper §IV-A): snarkjs supports
 * Groth16 and PlonK, and the paper justifies choosing Groth16 partly
 * because "the proving time of PlonK is twice as slow compared to
 * Groth16". This bench measures both provers of this library on the
 * same exponentiation workload, then extends the comparison to the
 * transparent STARK backend (src/stark/) for the three-way
 * prove/verify/proof-size table: the STARK trades a trusted setup
 * (none at all) and a hash-based prover for larger proofs and a
 * non-constant verifier — the axis the paper's scheme-selection
 * discussion does not cover.
 *
 * The two pipelines do not share a statement (R1CS exponentiation vs
 * AIR hash chain), so the three-way table aligns on work size n:
 * n constraints for the SNARKs, an n-step MiMC trace for the STARK —
 * one algebraic hash-like operation per row on both sides.
 */

#include "bench_util.h"
#include "core/pipeline.h"
#include "snark/plonk.h"
#include "snark/serialize.h"
#include "stark/air.h"
#include "stark/serialize.h"
#include "stark/stark.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    using Fr = typename Curve::Fr;
    using G = snark::Groth16<Curve>;
    using P = snark::Plonk<Curve>;

    TextTable table;
    table.setHeader({"constraints", "groth16 prove", "plonk prove",
                     "ratio", "groth16 verify", "plonk verify"});

    for (std::size_t n : sweepSizes()) {
        Rng rng(2024);
        Fr x = Fr::random(rng);

        // Groth16 pipeline.
        r1cs::ExponentiationCircuit<Fr> gcirc(n);
        auto cs = gcirc.builder.compile();
        r1cs::WitnessCalculator<Fr> calc(
            gcirc.builder.witnessProgram());
        auto gkeys = G::setup(cs, rng);
        Fr y = gcirc.evaluate(x);
        auto z = calc.compute({y}, {x});

        Timer tg;
        auto gproof = G::prove(gkeys.pk, cs, z, rng);
        const double groth_prove = tg.lap();
        bool gok = G::verify(gkeys.vk, {y}, gproof);
        const double groth_verify = tg.seconds();

        // PlonK pipeline on the same statement.
        snark::PlonkExponentiation<Fr> pcirc(n);
        auto pkeys = P::setup(pcirc.builder, rng);
        auto values = pcirc.assign(x);

        Timer tp;
        auto pproof = P::prove(pkeys.pk, values, {y}, rng);
        const double plonk_prove = tp.lap();
        bool pok = P::verify(pkeys.vk, {y}, pproof);
        const double plonk_verify = tp.seconds();

        if (!gok || !pok)
            std::printf("!! verification failed at n=%zu\n", n);

        table.addRow({"2^" + std::to_string(log2Of(n)),
                      fmtSeconds(groth_prove),
                      fmtSeconds(plonk_prove),
                      fmtF(plonk_prove / groth_prove, 2) + "x",
                      fmtSeconds(groth_verify),
                      fmtSeconds(plonk_verify)});
    }
    printTable(std::string("PlonK vs Groth16 proving time, ") +
                   Curve::kName,
               table);
}

/**
 * Three-way comparison on BN254 vs the Goldilocks STARK. Setup time
 * is part of the row because it is the transparent scheme's whole
 * argument: the SNARK columns pay a per-circuit trusted setup the
 * STARK column simply does not have.
 */
void
runThreeWay()
{
    using Curve = snark::Bn254;
    using Fr = Curve::Fr;
    using G = snark::Groth16<Curve>;
    using P = snark::Plonk<Curve>;

    TextTable table;
    table.setHeader({"n", "scheme", "setup", "prove", "verify",
                     "proof bytes"});

    for (std::size_t n : sweepSizes()) {
        Rng rng(2024);
        const std::string size = "2^" + std::to_string(log2Of(n));

        {
            r1cs::ExponentiationCircuit<Fr> circ(n);
            auto cs = circ.builder.compile();
            r1cs::WitnessCalculator<Fr> calc(
                circ.builder.witnessProgram());
            Timer ts;
            auto keys = G::setup(cs, rng);
            const double setup = ts.lap();
            Fr x = Fr::random(rng);
            Fr y = circ.evaluate(x);
            auto z = calc.compute({y}, {x});
            Timer t;
            auto proof = G::prove(keys.pk, cs, z, rng);
            const double prove = t.lap();
            const bool ok = G::verify(keys.vk, {y}, proof);
            const double verify = t.seconds();
            if (!ok)
                std::printf("!! groth16 failed at n=%zu\n", n);
            table.addRow({size, "groth16/bn254", fmtSeconds(setup),
                          fmtSeconds(prove), fmtSeconds(verify),
                          std::to_string(
                              snark::serializeProof<Curve>(proof)
                                  .size())});
        }
        {
            snark::PlonkExponentiation<Fr> circ(n);
            Timer ts;
            auto keys = P::setup(circ.builder, rng);
            const double setup = ts.lap();
            Fr x = Fr::random(rng);
            Fr y = x.pow(BigInt<1>((u64)n));
            auto values = circ.assign(x);
            Timer t;
            auto proof = P::prove(keys.pk, values, {y}, rng);
            const double prove = t.lap();
            const bool ok = P::verify(keys.vk, {y}, proof);
            const double verify = t.seconds();
            if (!ok)
                std::printf("!! plonk failed at n=%zu\n", n);
            table.addRow(
                {size, "plonk/bn254", fmtSeconds(setup),
                 fmtSeconds(prove), fmtSeconds(verify),
                 std::to_string(
                     snark::serializePlonkProof<Curve>(proof)
                         .size())});
        }
        {
            const stark::MimcAir air(n, stark::Gl::fromU64(7));
            const stark::StarkParams params{};
            Timer t;
            auto proof = stark::prove(air, params, 1);
            const double prove = t.lap();
            const bool ok = stark::verify(air, params, proof);
            const double verify = t.seconds();
            if (!ok)
                std::printf("!! stark failed at n=%zu\n", n);
            table.addRow({size, "stark/gl64", "none (transparent)",
                          fmtSeconds(prove), fmtSeconds(verify),
                          std::to_string(
                              stark::proofByteSize(proof))});
        }
    }
    printTable("Three-way: Groth16 vs PlonK vs transparent STARK",
               table);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_plonk_vs_groth16: the paper's scheme-selection "
                "datum (PlonK proving ~2x Groth16), plus the "
                "transparent STARK third way\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    zkp::bench::runThreeWay();
    return 0;
}
