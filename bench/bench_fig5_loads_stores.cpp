/**
 * @file
 * E2 — Fig. 5: loads and stores per stage as the constraint count
 * grows, with the min/avg/max band over the two curves.
 *
 * Paper reference points: setup needs ~1000x the loads of witness and
 * verifying; proving ~100x; setup has ~10x more loads than stores;
 * witness and verifying stay flat in n.
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

struct Series
{
    // [stage][size index] -> counts per curve.
    std::vector<double> loads[core::kNumStages];
    std::vector<double> stores[core::kNumStages];
};

template <typename Curve>
void
collect(Series& series, const std::vector<std::size_t>& sizes)
{
    core::SweepConfig cfg;
    cfg.sizes = sizes;
    cfg.sampleMask = sampleMask();
    auto cells = core::runMemoryAnalysis<Curve>(cfg);
    for (const auto& c : cells) {
        series.loads[(std::size_t)c.stage].push_back(c.loads);
        series.stores[(std::size_t)c.stage].push_back(c.stores);
    }
}

} // namespace
} // namespace zkp::bench

int
main()
{
    using namespace zkp;
    using namespace zkp::bench;
    std::printf("bench_fig5_loads_stores: memory reference volume per "
                "stage\n");

    const auto sizes = sweepSizes();
    Series bn, bls;
    collect<snark::Bn254>(bn, sizes);
    collect<snark::Bls381>(bls, sizes);

    for (const char* what : {"loads", "stores"}) {
        const bool is_loads = std::string(what) == "loads";
        TextTable table;
        table.setHeader({"stage", "n", "BN128", "BLS12-381", "avg"});
        for (core::Stage s : core::kAllStages) {
            const auto& a = is_loads ? bn.loads[(std::size_t)s]
                                     : bn.stores[(std::size_t)s];
            const auto& b = is_loads ? bls.loads[(std::size_t)s]
                                     : bls.stores[(std::size_t)s];
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                table.addRow(
                    {core::stageName(s),
                     "2^" + std::to_string(log2Of(sizes[i])),
                     fmtCount((unsigned long long)a[i]),
                     fmtCount((unsigned long long)b[i]),
                     fmtCount((unsigned long long)((a[i] + b[i]) / 2))});
            }
        }
        printTable(std::string("Fig.5 ") + what + " per stage", table);
    }

    // Ratio summary at the largest size (the paper's headline shape).
    const std::size_t last = sizes.size() - 1;
    auto avg_loads = [&](core::Stage s) {
        return (bn.loads[(std::size_t)s][last] +
                bls.loads[(std::size_t)s][last]) /
               2.0;
    };
    auto avg_stores = [&](core::Stage s) {
        return (bn.stores[(std::size_t)s][last] +
                bls.stores[(std::size_t)s][last]) /
               2.0;
    };
    TextTable ratios;
    ratios.setHeader({"ratio", "measured", "paper"});
    ratios.addRow({"setup loads / witness loads",
                   fmtF(avg_loads(core::Stage::Setup) /
                            avg_loads(core::Stage::Witness),
                        0),
                   "~1000x"});
    ratios.addRow({"proving loads / witness loads",
                   fmtF(avg_loads(core::Stage::Proving) /
                            avg_loads(core::Stage::Witness),
                        0),
                   "~100x"});
    ratios.addRow({"setup loads / setup stores",
                   fmtF(avg_loads(core::Stage::Setup) /
                            avg_stores(core::Stage::Setup),
                        1),
                   "~10x"});
    printTable("Fig.5 headline ratios at largest n", ratios);
    return 0;
}
