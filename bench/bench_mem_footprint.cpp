/**
 * @file
 * E13 — memory footprint vs circuit size (docs/EXPERIMENTS.md §E13).
 * The paper's resource analysis tracks peak memory alongside proving
 * time (Fig. 5 / Table III); this bench measures, for every
 * circuit-zoo entry under both Groth16 and the R1CS->PlonK lowering,
 * how much memory the setup and prove phases actually take:
 *
 *   - alloc bytes/count: exact allocator traffic on the measuring
 *     thread from the ZKP_MEMPROF interposition shim (the bench runs
 *     single-threaded so attribution is complete);
 *   - live delta: bytes still held when the phase returns (the keys /
 *     proof that outlive it);
 *   - peak-RSS delta: how much the phase raised the process
 *     high-water mark (VmHWM — monotonic, so later phases that fit
 *     inside an earlier peak legitimately report 0);
 *   - bytes per constraint: prove-phase allocation divided by the
 *     R1CS size, the scale-free number the paper's capacity-planning
 *     discussion wants.
 *
 * Run: ./build/bench/bench_mem_footprint [--quick] [--full]
 *   --quick  one small scale per entry (CI smoke)
 *   --full   also run PlonK for entries whose lowering exceeds the
 *            gate budget (SHA-256's ~520k-point SRS)
 *
 * Writes BENCH_mem_footprint.json (same "results" envelope as
 * BENCH_kernels.json, so bench_compare --against can diff two runs).
 * Memory profiling is force-enabled; under sanitizer builds the shim
 * compiles out and the alloc columns read 0 while the RSS columns
 * stay real.
 */

#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/memprof.h"
#include "r1cs/witness.h"
#include "r1cs/zoo.h"
#include "snark/groth16.h"
#include "snark/plonk.h"
#include "snark/plonk_from_r1cs.h"

namespace zkp::bench {
namespace {

/** PlonK runs above this many lowered gates only under --full. */
constexpr std::size_t kPlonkGateBudget = 1 << 16;

struct PhaseMem
{
    double seconds = 0;
    std::uint64_t allocBytes = 0;
    std::uint64_t allocCount = 0;
    std::int64_t liveDelta = 0;
    std::uint64_t peakRssDelta = 0;
};

template <typename Fn>
PhaseMem
measurePhase(Fn&& fn)
{
    PhaseMem p;
    const auto s0 = obs::memprof::threadStats();
    const std::uint64_t hwm0 = obs::memprof::peakRssBytes();
    Timer t;
    fn();
    p.seconds = t.seconds();
    const auto s1 = obs::memprof::threadStats();
    const std::uint64_t hwm1 = obs::memprof::peakRssBytes();
    p.allocBytes = s1.allocBytes - s0.allocBytes;
    p.allocCount = s1.allocCount - s0.allocCount;
    p.liveDelta = (std::int64_t)(s1.allocBytes - s0.allocBytes) -
                  (std::int64_t)(s1.freeBytes - s0.freeBytes);
    p.peakRssDelta = hwm1 - hwm0;
    return p;
}

struct Row
{
    std::string circuit, scheme, phase;
    std::size_t scale = 0, constraints = 0;
    PhaseMem mem;
};

std::string
fmtBytesShort(double bytes)
{
    const char* units[] = {"B", "KiB", "MiB", "GiB"};
    std::size_t u = 0;
    double v = bytes < 0 ? -bytes : bytes;
    while (v >= 1024.0 && u + 1 < 4) {
        v /= 1024.0;
        ++u;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%.1f %s",
                  bytes < 0 ? "-" : "", v, units[u]);
    return buf;
}

template <typename Curve>
void
runEntry(const r1cs::zoo::Entry<typename Curve::Fr>& e,
         std::size_t scale, std::size_t plonk_gate_budget,
         std::vector<Row>& rows)
{
    using Fr = typename Curve::Fr;
    Rng rng(0x6d656d66u);

    auto builder = e.build(scale);
    auto cs = builder.compile();
    const std::size_t n = cs.numConstraints();
    r1cs::WitnessCalculator<Fr> calc(builder.witnessProgram());
    auto w = e.sample(scale, rng);
    auto z = calc.compute(w.pub, w.priv);

    auto push = [&](const char* scheme, const char* phase,
                    const PhaseMem& m) {
        rows.push_back({e.name, scheme, phase, scale, n, m});
    };

    {
        typename snark::Groth16<Curve>::Keypair keys;
        push("groth16", "setup", measurePhase([&] {
                 keys = snark::Groth16<Curve>::setup(cs, rng);
             }));
        typename snark::Groth16<Curve>::Proof proof;
        push("groth16", "prove", measurePhase([&] {
                 proof = snark::Groth16<Curve>::prove(keys.pk, cs, z,
                                                      rng);
             }));
        if (!snark::Groth16<Curve>::verify(keys.vk, w.pub, proof))
            std::printf("!! groth16 verify failed: %s scale=%zu\n",
                        e.name.c_str(), scale);
    }

    snark::PlonkFromR1cs<Fr> lowered(cs);
    if (lowered.builder.numGates() > plonk_gate_budget)
        return;
    {
        typename snark::Plonk<Curve>::Keypair keys;
        push("plonk", "setup", measurePhase([&] {
                 keys = snark::Plonk<Curve>::setup(lowered.builder,
                                                   rng);
             }));
        auto values = lowered.assign(z);
        typename snark::Plonk<Curve>::Proof proof;
        push("plonk", "prove", measurePhase([&] {
                 proof = snark::Plonk<Curve>::prove(keys.pk, values,
                                                    w.pub, rng);
             }));
        if (!snark::Plonk<Curve>::verify(keys.vk, w.pub, proof))
            std::printf("!! plonk verify failed: %s scale=%zu\n",
                        e.name.c_str(), scale);
    }
}

void
writeJson(const std::vector<Row>& rows)
{
    std::string json = "{\n  \"bench\": \"bench_mem_footprint\",\n"
                       "  \"notes\": {\"unit\": \"bytes\", "
                       "\"threads\": \"1\"},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s_%s_%s\", \"n\": %zu, "
            "\"threads\": 1, \"repeats\": 1, "
            "\"seconds_mean\": %.6f, \"seconds_min\": %.6f, "
            "\"peak_rss_bytes\": %llu, \"alloc_bytes\": %llu, "
            "\"alloc_count\": %llu, \"live_delta_bytes\": %lld, "
            "\"peak_rss_delta_bytes\": %llu, "
            "\"bytes_per_constraint\": %.1f}%s\n",
            r.circuit.c_str(), r.scheme.c_str(), r.phase.c_str(),
            r.constraints, r.mem.seconds, r.mem.seconds,
            (unsigned long long)obs::memprof::peakRssBytes(),
            (unsigned long long)r.mem.allocBytes,
            (unsigned long long)r.mem.allocCount,
            (long long)r.mem.liveDelta,
            (unsigned long long)r.mem.peakRssDelta,
            r.constraints ? (double)r.mem.allocBytes /
                                (double)r.constraints
                          : 0.0,
            i + 1 < rows.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen("BENCH_mem_footprint.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "warning: cannot write "
                     "BENCH_mem_footprint.json\n");
        return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("results written to BENCH_mem_footprint.json\n");
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp;
    using namespace zkp::bench;
    using Curve = snark::Bn254;
    using Fr = Curve::Fr;

    const bool quick = hasFlag(argc, argv, "--quick");
    const bool full = hasFlag(argc, argv, "--full");
    const std::size_t budget = full ? ~std::size_t(0)
                                    : kPlonkGateBudget;

    obs::memprof::setTracking(true);
    std::printf("bench_mem_footprint: memory vs circuit size across "
                "the zoo (allocator %s)\n\n",
                obs::memprof::tracking()
                    ? "interposition active"
                    : "unavailable; RSS columns only");

    std::vector<Row> rows;
    for (const auto& e : r1cs::zoo::all<Fr>()) {
        // Two scales per entry (small then default) show how the
        // footprint scales; increasing order keeps the monotonic
        // VmHWM deltas attributable. --quick keeps only the small
        // point.
        std::vector<std::size_t> scales;
        const std::size_t small =
            e.name == "exp" ? 1024 : (e.defaultScale + 3) / 4;
        scales.push_back(small ? small : 1);
        if (!quick && e.defaultScale > scales.back())
            scales.push_back(e.defaultScale);
        for (std::size_t s : scales)
            runEntry<Curve>(e, s, budget, rows);
    }

    TextTable table;
    table.setHeader({"circuit", "scheme", "phase", "scale", "r1cs",
                     "time", "allocated", "allocs", "live Δ",
                     "peak RSS Δ", "B/constraint"});
    for (const auto& r : rows)
        table.addRow(
            {r.circuit, r.scheme, r.phase, std::to_string(r.scale),
             std::to_string(r.constraints), fmtSeconds(r.mem.seconds),
             fmtBytesShort((double)r.mem.allocBytes),
             std::to_string(r.mem.allocCount),
             fmtBytesShort((double)r.mem.liveDelta),
             fmtBytesShort((double)r.mem.peakRssDelta),
             r.constraints ? fmtF((double)r.mem.allocBytes /
                                      (double)r.constraints, 1)
                           : "-"});
    printTable("memory footprint by circuit, scheme and phase "
               "(single-threaded)",
               table);
    std::printf("process peak RSS: %s\n",
                fmtBytesShort(
                    (double)obs::memprof::peakRssBytes())
                    .c_str());

    writeJson(rows);
    return 0;
}
