/**
 * @file
 * E9 — Table VI: serial/parallel percentage per stage from fitting
 * the strong-scaling curves to Amdahl's law and the weak-scaling
 * curves to Gustafson's law, on the modelled i9, for both curves.
 *
 * Paper reference points (SS-i9-BN): proving is the most parallel
 * stage (72.7% parallel); compile 41.9%, setup 58.6%. WS shows >90%
 * parallelism for witness and verifying (their runtimes are ~constant
 * in n, so the scaled workload is "free").
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

const std::vector<unsigned> kThreads{1, 2, 4, 8, 16, 32};

struct Fits
{
    std::array<double, core::kNumStages> ssSerial{};
    std::array<double, core::kNumStages> wsSerial{};
};

template <typename Curve>
Fits
fitCurve()
{
    Fits fits;
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();

    auto ss = core::runStrongScaling<Curve>(cfg, kThreads,
                                            sim::cpuI9_13900K());
    std::array<double, core::kNumStages> sum{};
    std::array<unsigned, core::kNumStages> cnt{};
    for (const auto& c : ss) {
        sum[(std::size_t)c.stage] += c.fittedSerial;
        ++cnt[(std::size_t)c.stage];
    }
    for (std::size_t s = 0; s < core::kNumStages; ++s)
        fits.ssSerial[s] = cnt[s] ? sum[s] / cnt[s] : 1.0;

    auto ws = core::runWeakScaling<Curve>(
        std::size_t(1) << envLong("ZKP_WS_BASE_LOG_N", 10), kThreads,
        sim::cpuI9_13900K());
    for (const auto& c : ws)
        fits.wsSerial[(std::size_t)c.stage] = c.fittedSerial;
    return fits;
}

} // namespace
} // namespace zkp::bench

int
main()
{
    using namespace zkp;
    using namespace zkp::bench;
    std::printf("bench_table6_parallelism: Amdahl/Gustafson "
                "serial-parallel split (i9 model)\n");

    auto bn = fitCurve<snark::Bn254>();
    auto bls = fitCurve<snark::Bls381>();

    TextTable table;
    table.setHeader({"stage", "SS-BN ser%", "SS-BN par%", "SS-BLS ser%",
                     "SS-BLS par%", "WS-BN ser%", "WS-BN par%",
                     "WS-BLS ser%", "WS-BLS par%"});
    for (core::Stage s : core::kAllStages) {
        const std::size_t i = (std::size_t)s;
        table.addRow({core::stageName(s),
                      fmtF(100 * bn.ssSerial[i], 2),
                      fmtF(100 * (1 - bn.ssSerial[i]), 2),
                      fmtF(100 * bls.ssSerial[i], 2),
                      fmtF(100 * (1 - bls.ssSerial[i]), 2),
                      fmtF(100 * bn.wsSerial[i], 2),
                      fmtF(100 * (1 - bn.wsSerial[i]), 2),
                      fmtF(100 * bls.wsSerial[i], 2),
                      fmtF(100 * (1 - bls.wsSerial[i]), 2)});
    }
    printTable("Table VI: serial/parallel percentages", table);

    TextTable paper;
    paper.setHeader({"stage", "SS-BN ser%", "SS-BN par%", "SS-BLS ser%",
                     "SS-BLS par%", "WS-BN ser%", "WS-BN par%",
                     "WS-BLS ser%", "WS-BLS par%"});
    paper.addRow({"compile", "58.09", "41.90", "62.50", "37.49",
                  "69.65", "30.35", "71.98", "28.02"});
    paper.addRow({"setup", "41.35", "58.64", "68.30", "31.69", "73.59",
                  "26.41", "75.11", "24.89"});
    paper.addRow({"witness", "31.73", "68.26", "50.17", "49.82", "3.59",
                  "96.41", "7.75", "92.25"});
    paper.addRow({"proving", "27.28", "72.71", "31.06", "68.93",
                  "29.57", "70.43", "25.38", "74.62"});
    paper.addRow({"verifying", "43.68", "56.31", "57.56", "42.43",
                  "1.00", "99.00", "1.00", "99.00"});
    printTable("Table VI (paper, for comparison)", paper);
    return 0;
}
