/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Environment knobs (all optional):
 *   ZKP_MIN_LOG_N   smallest circuit size as log2 (default 10)
 *   ZKP_MAX_LOG_N   largest circuit size as log2 (default 12; the
 *                   paper sweeps to 18 — raise this when you have the
 *                   minutes to spare)
 *   ZKP_REPEATS     timing repeats, averaged (default 3, as in §IV)
 *   ZKP_SAMPLE_MASK memory-trace sampling mask (default 0 = trace all)
 *   ZKP_CSV         set to 1 to also print CSV blocks
 */

#ifndef ZKP_BENCH_UTIL_H
#define ZKP_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/analysis.h"
#include "obs/pmu.h"
#include "snark/curve.h"

namespace zkp::bench {

inline long
envLong(const char* name, long fallback)
{
    const char* v = std::getenv(name);
    return v ? std::atol(v) : fallback;
}

inline std::vector<std::size_t>
sweepSizes()
{
    const long lo = envLong("ZKP_MIN_LOG_N", 10);
    const long hi = envLong("ZKP_MAX_LOG_N", 12);
    std::vector<std::size_t> sizes;
    for (long k = lo; k <= hi; ++k)
        sizes.push_back(std::size_t(1) << k);
    return sizes;
}

inline unsigned
repeats()
{
    return (unsigned)envLong("ZKP_REPEATS", 3);
}

inline sim::u32
sampleMask()
{
    return (sim::u32)envLong("ZKP_SAMPLE_MASK", 0);
}

inline bool
wantCsv()
{
    return envLong("ZKP_CSV", 0) != 0;
}

/** Print a titled table (plus CSV when requested). */
inline void
printTable(const std::string& title, const TextTable& t)
{
    std::printf("\n== %s ==\n%s", title.c_str(), t.render().c_str());
    if (wantCsv())
        std::printf("-- csv --\n%s", t.renderCsv().c_str());
    std::fflush(stdout);
}

/** Apply a functor to both curve configurations. */
template <typename Fn>
void
forEachCurve(Fn&& fn)
{
    fn(snark::Bn254{});
    fn(snark::Bls381{});
}

/** log2 of a power of two, for axis labels. */
inline unsigned
log2Of(std::size_t n)
{
    unsigned k = 0;
    while ((std::size_t(1) << (k + 1)) <= n)
        ++k;
    return k;
}

/**
 * Linear-interpolated quantile of an ascending-sorted sample set, at
 * rank q * (size - 1). Returns 0 on an empty sample. Shared by the
 * latency benches (bench_serve) so client- and server-side
 * percentiles are computed the same way.
 */
inline double
percentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0;
    if (q <= 0)
        return sorted.front();
    if (q >= 1)
        return sorted.back();
    const double rank = q * (double)(sorted.size() - 1);
    const std::size_t lo = (std::size_t)rank;
    const std::size_t hi =
        lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = rank - (double)lo;
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** True when @p flag appears among the command-line arguments. */
inline bool
hasFlag(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** One stage's measured hardware counters (--hw bench modes). */
struct HwStageRow
{
    core::Stage stage = core::Stage::Compile;
    obs::pmu::HwStats hw;
};

/**
 * Run every pipeline stage once at size @p n with real PMU counters
 * and return the per-stage hardware statistics. Rows report
 * hw.available=false when the machine denies perf access — callers
 * print the fallback notice and keep the simulated tables.
 */
template <typename Curve>
std::vector<HwStageRow>
measureHwStages(std::size_t n, std::size_t threads)
{
    std::vector<HwStageRow> rows;
    core::StageRunner<Curve> runner(n);
    for (core::Stage s : core::kAllStages) {
        core::StageRun run = runner.run(s, threads);
        rows.push_back({s, run.hw});
    }
    return rows;
}

/**
 * Shared preamble of the --hw bench modes: reports availability and
 * returns false (after printing the reason) when hardware counters
 * cannot be read, in which case the caller sticks to simulator output.
 */
inline bool
hwModeUsable(const char* bench)
{
    if (obs::pmu::enabled())
        return true;
    std::printf("%s --hw: hardware counters unavailable (%s); "
                "showing simulated results only\n",
                bench,
                obs::pmu::unavailableReason().empty()
                    ? "disabled via ZKP_PMU=0"
                    : obs::pmu::unavailableReason().c_str());
    return false;
}

} // namespace zkp::bench

#endif // ZKP_BENCH_UTIL_H
