/**
 * @file
 * Kernel baseline emitter: times the hot kernels (parallel region
 * entry, NTT, MSM, Groth16 prove) with plain chrono and writes a
 * machine-readable JSON baseline. CI and PRs commit the output as
 * BENCH_kernels.json so kernel-level regressions show up in review
 * (see docs/PERFORMANCE.md for the schema).
 *
 * Run: ./build/bench/bench_kernels [out.json] [--note key=value]...
 *
 * Environment knobs:
 *   ZKP_KERNEL_LOG_N    prove size as log2 constraints (default 16)
 *   ZKP_KERNEL_THREADS  thread count for threaded entries (default 8)
 *   ZKP_REPEATS         timing repeats per entry (default 3)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "ec/msm.h"
#include "poly/domain.h"

namespace {

using namespace zkp;

struct Entry
{
    std::string name;
    std::size_t n = 0;
    std::size_t threads = 1;
    unsigned repeats = 1;
    double seconds_mean = 0;
    double seconds_min = 0;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Time fn() `repeats` times; record mean and min. */
template <typename Fn>
Entry
timeEntry(const std::string& name, std::size_t n, std::size_t threads,
          Fn&& fn)
{
    Entry e;
    e.name = name;
    e.n = n;
    e.threads = threads;
    e.repeats = bench::repeats();
    double sum = 0, best = 0;
    for (unsigned r = 0; r < e.repeats; ++r) {
        const double t0 = now();
        fn();
        const double dt = now() - t0;
        sum += dt;
        if (r == 0 || dt < best)
            best = dt;
    }
    e.seconds_mean = sum / e.repeats;
    e.seconds_min = best;
    std::printf("  %-28s n=%-8zu threads=%zu  %.6fs (min %.6fs)\n",
                e.name.c_str(), e.n, e.threads, e.seconds_mean,
                e.seconds_min);
    std::fflush(stdout);
    return e;
}

void
jsonEscape(std::string& out, const std::string& s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_kernels.json";
    std::vector<std::pair<std::string, std::string>> notes;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--note") == 0 && i + 1 < argc) {
            const std::string kv = argv[++i];
            const auto eq = kv.find('=');
            notes.emplace_back(kv.substr(0, eq),
                               eq == std::string::npos
                                   ? std::string()
                                   : kv.substr(eq + 1));
        } else if (positional == 0) {
            out_path = argv[i];
            ++positional;
        }
    }

    const std::size_t log_n =
        (std::size_t)bench::envLong("ZKP_KERNEL_LOG_N", 16);
    const std::size_t threads =
        (std::size_t)bench::envLong("ZKP_KERNEL_THREADS", 8);
    std::vector<Entry> entries;

    std::printf("bench_kernels: prove at 2^%zu constraints, %zu "
                "threads\n\n", log_n, threads);

    // Region-entry overhead: pool vs per-region thread spawn. 1000
    // near-empty regions isolate the fork-join cost itself.
    {
        const std::size_t regions = 1000;
        std::vector<u64> sink(threads, 0);
        parallelFor(1024, threads,
                    [](std::size_t, std::size_t, std::size_t) {});
        entries.push_back(timeEntry(
            "region_overhead_pool", regions, threads, [&] {
                for (std::size_t r = 0; r < regions; ++r)
                    parallelFor(1024, threads,
                                [&](std::size_t slot, std::size_t b,
                                    std::size_t e) {
                                    sink[slot] += e - b;
                                });
            }));
        entries.push_back(timeEntry(
            "region_overhead_spawn", regions, threads, [&] {
                for (std::size_t r = 0; r < regions; ++r) {
                    const std::size_t n = 1024;
                    const std::size_t per =
                        (n + threads - 1) / threads;
                    std::vector<std::thread> ts;
                    for (std::size_t t = 0; t < threads; ++t) {
                        const std::size_t b = t * per;
                        const std::size_t e =
                            b + per < n ? b + per : n;
                        ts.emplace_back(
                            [&, t, b, e] { sink[t] += e - b; });
                    }
                    for (auto& t : ts)
                        t.join();
                }
            }));
    }

    // NTT: one forward transform per timing (twiddles cached after
    // the first, which is the steady state a prove sees).
    {
        using Fr = ff::bn254::Fr;
        const std::size_t n = std::size_t(1) << 14;
        poly::Domain<Fr> dom(n);
        Rng rng(11);
        std::vector<Fr> v(n);
        for (auto& x : v)
            x = Fr::random(rng);
        dom.ntt(v, 1); // build the twiddle cache outside the clock
        for (std::size_t t : {std::size_t(1), threads})
            entries.push_back(timeEntry("ntt_forward", n, t,
                                        [&] { dom.ntt(v, t); }));
    }

    // MSM: signed-window Pippenger at a mid sweep size.
    {
        using G1 = ec::Bn254G1;
        using Fr = G1::Scalar;
        const std::size_t n = std::size_t(1) << 13;
        Rng rng(12);
        G1::Jacobian g{G1::generator()};
        std::vector<G1::Affine> pts;
        std::vector<Fr::Repr> scalars;
        for (std::size_t i = 0; i < n; ++i) {
            pts.push_back(
                g.mulScalar(rng.nextBelow(1 << 20) + 1).toAffine());
            scalars.push_back(Fr::random(rng).toBigInt());
        }
        for (std::size_t t : {std::size_t(1), threads})
            entries.push_back(timeEntry("msm_pippenger", n, t, [&] {
                auto p = ec::msm<G1::Jacobian>(pts.data(),
                                               scalars.data(), n, t);
                (void)p;
            }));
    }

    // End-to-end proving stage (the acceptance gate: prove at 2^16
    // with 8 threads). StageRunner caches prerequisites, so repeats
    // time only the proving stage.
    {
        core::StageRunner<snark::Bn254> runner(std::size_t(1) << log_n);
        runner.run(core::Stage::Witness, threads); // warm prerequisites
        entries.push_back(timeEntry(
            "groth16_prove", std::size_t(1) << log_n, threads, [&] {
                auto r = runner.run(core::Stage::Proving, threads);
                (void)r;
            }));
    }

    // Emit JSON.
    std::string json = "{\n  \"bench\": \"bench_kernels\",\n";
    json += "  \"notes\": {";
    for (std::size_t i = 0; i < notes.size(); ++i) {
        json += i ? ", \"" : "\"";
        jsonEscape(json, notes[i].first);
        json += "\": \"";
        jsonEscape(json, notes[i].second);
        json += "\"";
    }
    json += "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"n\": %zu, "
                      "\"threads\": %zu, \"repeats\": %u, "
                      "\"seconds_mean\": %.6f, \"seconds_min\": %.6f}%s\n",
                      e.name.c_str(), e.n, e.threads, e.repeats,
                      e.seconds_mean, e.seconds_min,
                      i + 1 < entries.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nbaseline written to %s\n", out_path.c_str());
    return 0;
}
