/**
 * @file
 * Kernel baseline emitter: times the hot kernels (parallel region
 * entry, NTT, MSM, Groth16 prove) with plain chrono and writes a
 * machine-readable JSON baseline. CI and PRs commit the output as
 * BENCH_kernels.json so kernel-level regressions show up in review
 * (see docs/PERFORMANCE.md for the schema). bench_compare reruns the
 * same kernel set against a stored baseline and fails on regression.
 *
 * Run: ./build/bench/bench_kernels [out.json] [--note key=value]...
 *
 * Environment knobs:
 *   ZKP_KERNEL_LOG_N    prove size as log2 constraints (default 16)
 *   ZKP_KERNEL_THREADS  thread count for threaded entries (default 8)
 *   ZKP_REPEATS         timing repeats per entry (default 3)
 */

#include "kernels_common.h"

int
main(int argc, char** argv)
{
    using namespace zkp;
    std::string out_path = "BENCH_kernels.json";
    std::vector<std::pair<std::string, std::string>> notes;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--note") == 0 && i + 1 < argc) {
            const std::string kv = argv[++i];
            const auto eq = kv.find('=');
            notes.emplace_back(kv.substr(0, eq),
                               eq == std::string::npos
                                   ? std::string()
                                   : kv.substr(eq + 1));
        } else if (positional == 0) {
            out_path = argv[i];
            ++positional;
        }
    }

    const std::size_t log_n =
        (std::size_t)bench::envLong("ZKP_KERNEL_LOG_N", 16);
    const std::size_t threads =
        (std::size_t)bench::envLong("ZKP_KERNEL_THREADS", 8);

    std::printf("bench_kernels: prove at 2^%zu constraints, %zu "
                "threads\n\n", log_n, threads);

    const auto entries = bench::runKernelEntries(log_n, threads);

    if (!bench::writeKernelJson(
            out_path, bench::kernelEntriesJson(entries, notes))) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::printf("\nbaseline written to %s\n", out_path.c_str());
    return 0;
}
