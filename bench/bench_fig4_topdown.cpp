/**
 * @file
 * E1 — Fig. 4: top-down microarchitecture analysis. For every stage,
 * constraint size, curve and modelled CPU, the percentage of pipeline
 * slots that are front-end bound / bad speculation / back-end bound /
 * retiring, plus the dominant bucket.
 *
 * Paper reference points: the same stage lands in different buckets on
 * different CPUs (e.g. compile is back-end bound on i5/i9 but
 * front-end bound on the i7; witness is front-end bound everywhere).
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    cfg.sampleMask = sampleMask();

    auto cells = core::runTopDownAnalysis<Curve>(cfg);

    TextTable table;
    table.setHeader({"stage", "n", "cpu", "front-end", "bad-spec",
                     "back-end", "retiring", "bound"});
    for (const auto& c : cells) {
        table.addRow({core::stageName(c.stage),
                      "2^" + std::to_string(log2Of(c.constraints)),
                      c.cpu, fmtPct(c.result.frontend, 1),
                      fmtPct(c.result.badSpeculation, 1),
                      fmtPct(c.result.backend, 1),
                      fmtPct(c.result.retiring, 1),
                      c.result.boundCategory()});
    }
    printTable(std::string("Fig.4 top-down slot classification, ") +
                   Curve::kName,
               table);

    // Dominant bucket summary across sizes (the Fig. 4 story).
    TextTable summary;
    summary.setHeader({"stage", "i7-8650U", "i5-11400", "i9-13900K"});
    for (core::Stage s : core::kAllStages) {
        std::array<std::string, 3> dominant;
        for (const auto& c : cells) {
            if (c.stage != s)
                continue;
            std::size_t idx = c.cpu == "i7-8650U"  ? 0
                              : c.cpu == "i5-11400" ? 1
                                                    : 2;
            dominant[idx] = c.result.boundCategory(); // last size wins
        }
        summary.addRow({core::stageName(s), dominant[0], dominant[1],
                        dominant[2]});
    }
    printTable(std::string("Fig.4 dominant bucket per CPU (largest n), ") +
                   Curve::kName,
               summary);
}

} // namespace
} // namespace zkp::bench

int
main()
{
    std::printf("bench_fig4_topdown: top-down analysis across the three "
                "modelled CPUs\n");
    zkp::bench::runCurve<zkp::snark::Bn254>();
    zkp::bench::runCurve<zkp::snark::Bls381>();
    return 0;
}
