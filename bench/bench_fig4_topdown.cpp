/**
 * @file
 * E1 — Fig. 4: top-down microarchitecture analysis. For every stage,
 * constraint size, curve and modelled CPU, the percentage of pipeline
 * slots that are front-end bound / bad speculation / back-end bound /
 * retiring, plus the dominant bucket.
 *
 * Paper reference points: the same stage lands in different buckets on
 * different CPUs (e.g. compile is back-end bound on i5/i9 but
 * front-end bound on the i7; witness is front-end bound everywhere).
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
void
runCurve()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    cfg.sampleMask = sampleMask();

    auto cells = core::runTopDownAnalysis<Curve>(cfg);

    TextTable table;
    table.setHeader({"stage", "n", "cpu", "front-end", "bad-spec",
                     "back-end", "retiring", "bound"});
    for (const auto& c : cells) {
        table.addRow({core::stageName(c.stage),
                      "2^" + std::to_string(log2Of(c.constraints)),
                      c.cpu, fmtPct(c.result.frontend, 1),
                      fmtPct(c.result.badSpeculation, 1),
                      fmtPct(c.result.backend, 1),
                      fmtPct(c.result.retiring, 1),
                      c.result.boundCategory()});
    }
    printTable(std::string("Fig.4 top-down slot classification, ") +
                   Curve::kName,
               table);

    // Dominant bucket summary across sizes (the Fig. 4 story).
    TextTable summary;
    summary.setHeader({"stage", "i7-8650U", "i5-11400", "i9-13900K"});
    for (core::Stage s : core::kAllStages) {
        std::array<std::string, 3> dominant;
        for (const auto& c : cells) {
            if (c.stage != s)
                continue;
            std::size_t idx = c.cpu == "i7-8650U"  ? 0
                              : c.cpu == "i5-11400" ? 1
                                                    : 2;
            dominant[idx] = c.result.boundCategory(); // last size wins
        }
        summary.addRow({core::stageName(s), dominant[0], dominant[1],
                        dominant[2]});
    }
    printTable(std::string("Fig.4 dominant bucket per CPU (largest n), ") +
                   Curve::kName,
               summary);
}

/**
 * --hw mode: simulated vs measured top-down level-1 classification.
 * The measured fractions come from the PERF_METRICS top-down events
 * (Intel Ice Lake and newer); on CPUs without them the mode still
 * prints measured IPC next to the simulated slot split so the
 * calibration gap stays visible.
 */
template <typename Curve>
void
hwComparison(std::size_t n)
{
    core::SweepConfig cfg;
    cfg.sizes = {n};
    cfg.sampleMask = sampleMask();
    auto cells = core::runTopDownAnalysis<Curve>(cfg);

    auto rows = measureHwStages<Curve>(n, 1);

    TextTable table;
    table.setHeader({"stage", "source", "front-end", "bad-spec",
                     "back-end", "retiring", "IPC"});
    for (core::Stage s : core::kAllStages) {
        for (const auto& c : cells) {
            if (c.stage != s || c.cpu != "i9-13900K")
                continue;
            table.addRow({core::stageName(s), "sim i9",
                          fmtPct(c.result.frontend, 1),
                          fmtPct(c.result.badSpeculation, 1),
                          fmtPct(c.result.backend, 1),
                          fmtPct(c.result.retiring, 1), "-"});
        }
        for (const auto& r : rows) {
            if (r.stage != s)
                continue;
            if (r.hw.available && r.hw.topdownValid) {
                table.addRow({"", "measured",
                              fmtPct(r.hw.tdFeBound, 1),
                              fmtPct(r.hw.tdBadSpec, 1),
                              fmtPct(r.hw.tdBeBound, 1),
                              fmtPct(r.hw.tdRetiring, 1),
                              fmtF(r.hw.ipc, 2)});
            } else if (r.hw.available) {
                table.addRow({"", "measured", "n/a", "n/a", "n/a",
                              "n/a", fmtF(r.hw.ipc, 2)});
            } else {
                table.addRow({"", "measured", "n/a", "n/a", "n/a",
                              "n/a", "n/a"});
            }
        }
    }
    printTable(std::string("Fig.4 --hw: top-down L1 slots, sim vs "
                           "perf_event, n=2^") +
                   std::to_string(log2Of(n)) + ", " + Curve::kName,
               table);
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp;
    using namespace zkp::bench;

    if (hasFlag(argc, argv, "--hw")) {
        std::printf("bench_fig4_topdown --hw: simulated vs measured "
                    "top-down classification\n");
        const std::size_t n = sweepSizes().back();
        if (hwModeUsable("bench_fig4_topdown")) {
            hwComparison<snark::Bn254>(n);
            hwComparison<snark::Bls381>(n);
            return 0;
        }
    }

    std::printf("bench_fig4_topdown: top-down analysis across the three "
                "modelled CPUs\n");
    runCurve<snark::Bn254>();
    runCurve<snark::Bls381>();
    return 0;
}
