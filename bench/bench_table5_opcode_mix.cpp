/**
 * @file
 * E6 — Table V: the compute / control-flow / data-flow instruction
 * mix of each stage (the DynamoRIO opcode-mix profile), averaged over
 * the size sweep, per curve.
 *
 * Paper reference points: setup/proving/verifying are
 * compute-intensive (42.6 / 47.3 / 48.2% average); compile is
 * data-flow intensive (39.6%); witness is the control-flow-intensive
 * stage.
 */

#include "bench_util.h"

namespace zkp::bench {
namespace {

template <typename Curve>
std::array<core::OpcodeMix, core::kNumStages>
averageMix()
{
    core::SweepConfig cfg;
    cfg.sizes = sweepSizes();
    auto cells = core::runCodeAnalysis<Curve>(cfg);
    std::array<core::OpcodeMix, core::kNumStages> avg{};
    std::array<unsigned, core::kNumStages> count{};
    for (const auto& c : cells) {
        auto& a = avg[(std::size_t)c.stage];
        a.computePct += c.mix.computePct;
        a.controlPct += c.mix.controlPct;
        a.dataPct += c.mix.dataPct;
        ++count[(std::size_t)c.stage];
    }
    for (std::size_t s = 0; s < core::kNumStages; ++s) {
        if (!count[s])
            continue;
        avg[s].computePct /= count[s];
        avg[s].controlPct /= count[s];
        avg[s].dataPct /= count[s];
    }
    return avg;
}

} // namespace
} // namespace zkp::bench

int
main()
{
    using namespace zkp;
    using namespace zkp::bench;
    std::printf("bench_table5_opcode_mix: instruction-class mix per "
                "stage (avg over sizes)\n");

    auto bn = averageMix<snark::Bn254>();
    auto bls = averageMix<snark::Bls381>();

    TextTable table;
    table.setHeader({"stage", "BN Comp%", "BN Ctrl%", "BN Data%",
                     "BLS Comp%", "BLS Ctrl%", "BLS Data%",
                     "dominant"});
    for (core::Stage s : core::kAllStages) {
        const auto& a = bn[(std::size_t)s];
        const auto& b = bls[(std::size_t)s];
        const char* dom = "compute";
        double c_avg = (a.computePct + b.computePct) / 2;
        double t_avg = (a.controlPct + b.controlPct) / 2;
        double d_avg = (a.dataPct + b.dataPct) / 2;
        if (t_avg > c_avg && t_avg > d_avg)
            dom = "control-flow";
        else if (d_avg > c_avg && d_avg > t_avg)
            dom = "data-flow";
        table.addRow({core::stageName(s), fmtF(a.computePct, 2),
                      fmtF(a.controlPct, 2), fmtF(a.dataPct, 2),
                      fmtF(b.computePct, 2), fmtF(b.controlPct, 2),
                      fmtF(b.dataPct, 2), dom});
    }
    printTable("Table V: opcode-type percentages", table);

    TextTable paper;
    paper.setHeader({"stage", "BN Comp%", "BN Ctrl%", "BN Data%",
                     "BLS Comp%", "BLS Ctrl%", "BLS Data%"});
    paper.addRow({"compile", "32.68", "28.99", "38.33", "38.68",
                  "20.42", "40.89"});
    paper.addRow({"setup", "42.60", "20.16", "37.24", "42.53", "20.36",
                  "37.10"});
    paper.addRow({"witness", "35.96", "29.49", "34.55", "39.16",
                  "28.26", "32.57"});
    paper.addRow({"proving", "40.96", "22.69", "36.35", "53.66",
                  "16.27", "30.07"});
    paper.addRow({"verifying", "46.66", "24.81", "28.53", "49.75",
                  "23.04", "27.21"});
    printTable("Table V (paper, for comparison)", paper);
    return 0;
}
