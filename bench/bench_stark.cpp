/**
 * @file
 * E13/E14 — transparent STARK backend characterization.
 *
 * Default mode sweeps both shipped AIRs (Fibonacci, MiMC hash chain)
 * over the trace-length sweep, timing prove and verify and recording
 * proof sizes, and writes BENCH_stark.json in the BENCH_kernels.json
 * entry schema — so bench_compare gates STARK prover regressions with
 * `bench_compare BENCH_stark.json --against <fresh>` exactly like the
 * kernel and serve baselines.
 *
 * --mix (E14) reruns the opcode-mix and MPKI analyses on the STARK
 * prover and prints them next to the Groth16 proving stage measured
 * the same way: the STARK prover is hash-compression dominated (wide
 * multiplies near zero per kilo-instruction, PrimOp::HashCompress the
 * top primitive) where the SNARK prover is Montgomery-multiply
 * dominated — the microarchitectural contrast EXPERIMENTS.md §E14
 * documents.
 *
 * --smoke proves and verifies one small instance per AIR and exits
 * nonzero on any failure (the CI stark-smoke step).
 *
 * Run: ./build/bench/bench_stark [--mix] [--smoke] [--out <path>]
 * Env: ZKP_MIN_LOG_N / ZKP_MAX_LOG_N (trace-length sweep),
 *      ZKP_REPEATS, ZKP_KERNEL_THREADS (prover threads, default 8),
 *      ZKP_SAMPLE_MASK (--mix cache-trace sampling)
 */

#include <memory>

#include "bench_util.h"
#include "core/analysis.h"
#include "kernels_common.h"
#include "stark/air.h"
#include "stark/serialize.h"
#include "stark/stark.h"

namespace zkp::bench {
namespace {

using stark::Gl;

stark::StarkParams
benchParams()
{
    return {}; // production defaults: blowup 8, 30 queries, 12 grind
}

std::unique_ptr<stark::Air>
makeAir(const std::string& name, std::size_t steps)
{
    if (name == "fib")
        return std::make_unique<stark::FibonacciAir>(
            steps, Gl::fromU64(1), Gl::fromU64(1));
    return std::make_unique<stark::MimcAir>(steps, Gl::fromU64(7));
}

int
runSmoke()
{
    for (const char* name : {"fib", "mimc"}) {
        const auto air = makeAir(name, 64);
        const auto params = benchParams();
        const stark::StarkProof proof = stark::prove(*air, params, 2);
        const auto bytes = stark::serializeProof(proof);
        const auto back = stark::deserializeProof(bytes);
        if (!back || !stark::verify(*air, params, *back)) {
            std::printf("bench_stark --smoke: %s FAILED\n", name);
            return 1;
        }
        std::printf("bench_stark --smoke: %s ok (%zu proof bytes)\n",
                    name, bytes.size());
    }
    return 0;
}

int
runTimings(const std::string& out_path)
{
    const std::size_t threads =
        (std::size_t)envLong("ZKP_KERNEL_THREADS", 8);
    const auto params = benchParams();

    std::vector<KernelEntry> entries;
    std::vector<std::pair<std::string, std::string>> notes;
    notes.emplace_back("bench", "bench_stark");
    notes.emplace_back("queries", std::to_string(params.queries));
    notes.emplace_back("grind_bits",
                       std::to_string(params.grindBits));
    notes.emplace_back("blowup", std::to_string(params.blowup));

    TextTable table;
    table.setHeader({"air", "steps", "prove", "verify",
                     "proof KiB", "bytes/step"});

    for (const char* name : {"fib", "mimc"}) {
        for (std::size_t n : sweepSizes()) {
            const auto air = makeAir(name, n);
            stark::StarkProof proof;
            bool ok = true;
            entries.push_back(timeKernel(
                std::string("stark_prove_") + name, n, threads, [&] {
                    proof = stark::prove(*air, params, threads);
                }));
            entries.push_back(timeKernel(
                std::string("stark_verify_") + name, n, 1,
                [&] { ok = stark::verify(*air, params, proof); }));
            if (!ok)
                std::printf("!! verification failed: %s n=%zu\n",
                            name, n);
            const std::size_t bytes =
                stark::proofByteSize(proof);
            notes.emplace_back(std::string("proof_bytes_") + name +
                                   "_" + std::to_string(n),
                               std::to_string(bytes));
            table.addRow(
                {name, "2^" + std::to_string(log2Of(n)),
                 fmtSeconds(entries[entries.size() - 2].secondsMean),
                 fmtSeconds(entries.back().secondsMean),
                 fmtF((double)bytes / 1024.0, 1),
                 fmtF((double)bytes / (double)n, 1)});
        }
    }
    printTable("STARK prove/verify (transparent, no setup)", table);

    const std::string json = kernelEntriesJson(entries, notes);
    if (!writeKernelJson(out_path, json)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("results written to %s\n", out_path.c_str());
    return 0;
}

/** Counter-and-cache observation of one full STARK prove. */
struct StarkObservation
{
    sim::Counters counters;
    std::vector<core::CpuObservation> cpus;
};

StarkObservation
observeStarkProve(const stark::Air& air, std::size_t threads,
                  sim::u32 sample_mask)
{
    const double scale = (double)(sample_mask + 1);

    std::vector<std::unique_ptr<sim::CacheHierarchy>> caches;
    std::vector<std::unique_ptr<sim::GsharePredictor>> predictors;
    std::vector<sim::TraceSink*> sinks;
    for (const sim::CpuModel* cpu : sim::allCpuModels()) {
        caches.push_back(std::make_unique<sim::CacheHierarchy>(
            cpu->makeHierarchy(2'000'000)));
        predictors.push_back(std::make_unique<sim::GsharePredictor>(
            cpu->name, cpu->predictorBits));
        sinks.push_back(caches.back().get());
        sinks.push_back(predictors.back().get());
    }

    sim::drainWorkerCounters();
    const sim::Counters before = sim::counters();
    (void)stark::prove(air, benchParams(), threads, sinks,
                       sample_mask);
    sim::drainWorkerCounters();

    StarkObservation obs;
    obs.counters =
        stark::starkCountersDelta(before, sim::counters());
    const auto& models = sim::allCpuModels();
    for (std::size_t i = 0; i < models.size(); ++i) {
        core::CpuObservation c;
        c.cpu = models[i];
        c.llcLoadMisses =
            (double)caches[i]->llcLoadMisses() * scale;
        obs.cpus.push_back(c);
    }
    return obs;
}

int
runMix()
{
    sim::installWorkerMergeHook();
    const std::size_t n = sweepSizes().back();
    const sim::u32 mask = sampleMask();

    TextTable table;
    table.setHeader({"prover", "comp%", "ctrl%", "data%",
                     "imul/kinstr", "hash-compress%", "i7 MPKI",
                     "i9 MPKI"});

    auto addRow = [&](const std::string& label,
                      const sim::Counters& c,
                      const std::vector<core::CpuObservation>& cpus) {
        const core::OpcodeMix mix = core::opcodeMixOf(c);
        const double instr = (double)c.instructions();
        const double imulK =
            instr > 0 ? (double)c.imuls / (instr / 1000.0) : 0;
        // Share of all instructions attributable to SHA-256
        // compressions (the STARK-side analog of the Montgomery-mul
        // share on the SNARK side).
        const auto sig = sim::signatureFor(
            sim::PrimOp::HashCompress, 1);
        const double hashInstr =
            (double)c.prim[(std::size_t)sim::PrimOp::HashCompress] *
            (sig.compute + sig.control + sig.data);
        double i7 = 0, i9 = 0;
        for (const auto& cpu : cpus) {
            const double mpki =
                instr > 0 ? cpu.llcLoadMisses / (instr / 1000.0)
                          : 0;
            const std::string cn = cpu.cpu->name;
            if (cn.find("i7") != std::string::npos)
                i7 = mpki;
            else if (cn.find("i9") != std::string::npos)
                i9 = mpki;
        }
        table.addRow({label, fmtF(mix.computePct, 1),
                      fmtF(mix.controlPct, 1), fmtF(mix.dataPct, 1),
                      fmtF(imulK, 1),
                      fmtF(instr > 0 ? 100.0 * hashInstr / instr : 0,
                           1),
                      fmtF(i7, 3), fmtF(i9, 3)});
    };

    for (const char* name : {"fib", "mimc"}) {
        const auto air = makeAir(name, n);
        const StarkObservation obs =
            observeStarkProve(*air, 1, mask);
        addRow(std::string("stark ") + name + " 2^" +
                   std::to_string(log2Of(n)),
               obs.counters, obs.cpus);
    }

    // The SNARK contrast: the Groth16 proving stage at the same size,
    // observed through the identical cache/counter machinery.
    {
        core::SweepConfig cfg;
        cfg.sizes = {n};
        cfg.sampleMask = mask;
        core::StageRunner<snark::Bn254> runner(n);
        const core::StageObservation obs = core::observeStage(
            runner, core::Stage::Proving, cfg);
        addRow("groth16 prove 2^" + std::to_string(log2Of(n)),
               obs.run.counters, obs.cpus);
    }

    printTable("E14: STARK vs SNARK prover opcode mix and LLC MPKI",
               table);
    std::printf(
        "\nReading: the STARK prover's instruction stream is "
        "dominated by SHA-256 compressions\n(register-resident "
        "rotate/xor/add, near-zero wide multiplies), while the "
        "Groth16 prover\nis Montgomery-CIOS dominated "
        "(~20 imuls per 4-limb mul). See EXPERIMENTS.md §E14.\n");
    return 0;
}

} // namespace
} // namespace zkp::bench

int
main(int argc, char** argv)
{
    using namespace zkp::bench;
    std::printf("bench_stark: transparent STARK/FRI backend "
                "(Goldilocks, SHA-256 Merkle, blowup 8)\n");
    if (hasFlag(argc, argv, "--smoke"))
        return runSmoke();
    if (hasFlag(argc, argv, "--mix"))
        return runMix();
    std::string out_path = "BENCH_stark.json";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
    return runTimings(out_path);
}
