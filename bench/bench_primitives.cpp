/**
 * @file
 * E10 — kernel-level microbenchmarks (google-benchmark) of the
 * primitives every stage decomposes into: field ops on both base
 * fields, extension-tower ops, curve ops, fixed-base and Pippenger
 * multiplication, NTT, pairing components, and the witness
 * interpreter.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "common/parallel.h"
#include "common/rng.h"
#include "ec/fixed_base.h"
#include "ec/msm.h"
#include "pairing/pairing.h"
#include "poly/domain.h"
#include "r1cs/circuits.h"

namespace {

using namespace zkp;

template <typename F>
void
BM_FieldMul(benchmark::State& state)
{
    Rng rng(1);
    F a = F::random(rng);
    F b = F::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldMul, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldMul, ff::bls381::Fq);

template <typename F>
void
BM_FieldAdd(benchmark::State& state)
{
    Rng rng(2);
    F a = F::random(rng);
    F b = F::random(rng);
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldAdd, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldAdd, ff::bls381::Fq);

template <typename F>
void
BM_FieldInverse(benchmark::State& state)
{
    Rng rng(3);
    F a = F::random(rng);
    for (auto _ : state) {
        a = a.inverse() + F::one();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldInverse, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldInverse, ff::bls381::Fq);

template <typename Tower>
void
BM_Fp12Mul(benchmark::State& state)
{
    Rng rng(4);
    auto a = ff::Fp12<Tower>::random(rng);
    auto b = ff::Fp12<Tower>::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_Fp12Mul, ff::Bn254Tower);
BENCHMARK_TEMPLATE(BM_Fp12Mul, ff::Bls381Tower);

template <typename Group>
void
BM_PointAddMixed(benchmark::State& state)
{
    typename Group::Jacobian g{Group::generator()};
    auto p = g.mulScalar((u64)12345);
    auto q = g.mulScalar((u64)67890).toAffine();
    for (auto _ : state) {
        p = p.addMixed(q);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bls381G1);
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bn254G2);

template <typename Group>
void
BM_ScalarMul(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    Rng rng(5);
    typename Group::Jacobian g{Group::generator()};
    auto k = Fr::random(rng).toBigInt();
    for (auto _ : state) {
        auto p = g.mulScalar(k);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_ScalarMul, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_ScalarMul, ec::Bls381G1);

template <typename Group>
void
BM_FixedBaseMul(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    using Repr = typename Fr::Repr;
    static const ec::FixedBaseTable<typename Group::Jacobian, Repr>
        table{typename Group::Jacobian{Group::generator()}};
    Rng rng(6);
    auto k = Fr::random(rng).toBigInt();
    for (auto _ : state) {
        auto p = table.mul(k);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_FixedBaseMul, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_FixedBaseMul, ec::Bls381G1);

template <typename Group>
void
BM_Msm(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    using Repr = typename Fr::Repr;
    const std::size_t n = (std::size_t)state.range(0);
    Rng rng(7);
    typename Group::Jacobian g{Group::generator()};
    std::vector<typename Group::Affine> pts;
    std::vector<Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(1 << 20) + 1)
                          .toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    for (auto _ : state) {
        auto p = ec::msm<typename Group::Jacobian>(pts.data(),
                                                   scalars.data(), n);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK_TEMPLATE(BM_Msm, ec::Bn254G1)->Arg(1 << 10)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_Msm, ec::Bls381G1)->Arg(1 << 10);

template <typename Fr>
void
BM_Ntt(benchmark::State& state)
{
    const std::size_t n = (std::size_t)state.range(0);
    poly::Domain<Fr> dom(n);
    Rng rng(8);
    std::vector<Fr> v(n);
    for (auto& x : v)
        x = Fr::random(rng);
    for (auto _ : state) {
        dom.ntt(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK_TEMPLATE(BM_Ntt, ff::bn254::Fr)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_Ntt, ff::bls381::Fr)->Arg(1 << 12);

template <typename Engine>
void
BM_MillerLoop(benchmark::State& state)
{
    auto p = Engine::G1::generator();
    auto q = Engine::G2::generator();
    for (auto _ : state) {
        auto f = Engine::millerLoop(p, q);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK_TEMPLATE(BM_MillerLoop, pairing::Bn254Engine);
BENCHMARK_TEMPLATE(BM_MillerLoop, pairing::Bls381Engine);

template <typename Engine>
void
BM_FullPairing(benchmark::State& state)
{
    auto p = Engine::G1::generator();
    auto q = Engine::G2::generator();
    for (auto _ : state) {
        auto f = Engine::pairing(p, q);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK_TEMPLATE(BM_FullPairing, pairing::Bn254Engine);
BENCHMARK_TEMPLATE(BM_FullPairing, pairing::Bls381Engine);

void
BM_WitnessInterpreter(benchmark::State& state)
{
    using Fr = ff::bn254::Fr;
    const std::size_t n = (std::size_t)state.range(0);
    r1cs::ExponentiationCircuit<Fr> circ(n);
    r1cs::WitnessCalculator<Fr> calc(circ.builder.witnessProgram());
    Rng rng(9);
    Fr x = Fr::random(rng);
    Fr y = circ.evaluate(x);
    for (auto _ : state) {
        auto z = calc.compute({y}, {x});
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK(BM_WitnessInterpreter)->Arg(1 << 10)->Arg(1 << 14);

/**
 * Fork-join region overhead on the persistent pool: a near-empty body
 * isolates the cost of entering/leaving a parallelFor region. The NTT
 * opens one region per butterfly level, so this overhead multiplies by
 * ~log2(n) x transforms-per-prove.
 */
void
BM_ParallelRegionPool(benchmark::State& state)
{
    const std::size_t threads = (std::size_t)state.range(0);
    // Warm the pool so lazy worker start is not measured.
    parallelFor(1024, threads,
                [](std::size_t, std::size_t, std::size_t) {});
    std::vector<u64> out(threads, 0);
    for (auto _ : state) {
        parallelFor(1024, threads,
                    [&](std::size_t slot, std::size_t b, std::size_t e) {
                        out[slot] += e - b;
                    });
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ParallelRegionPool)->Arg(2)->Arg(4)->Arg(8);

/**
 * The same region executed by spawning fresh std::threads, replicating
 * the pre-pool parallelFor: the gap to BM_ParallelRegionPool is the
 * per-region spawn/join cost the pool eliminates.
 */
void
BM_ParallelRegionSpawn(benchmark::State& state)
{
    const std::size_t threads = (std::size_t)state.range(0);
    std::vector<u64> out(threads, 0);
    for (auto _ : state) {
        const std::size_t n = 1024;
        const std::size_t per = (n + threads - 1) / threads;
        std::vector<std::thread> ts;
        for (std::size_t t = 0; t < threads; ++t) {
            const std::size_t b = t * per;
            const std::size_t e = b + per < n ? b + per : n;
            ts.emplace_back([&, t, b, e] { out[t] += e - b; });
        }
        for (auto& t : ts)
            t.join();
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ParallelRegionSpawn)->Arg(2)->Arg(4)->Arg(8);

/**
 * MSM digit extraction, limb-level: the production path — bias once,
 * then each window digit is one two-limb shift/mask read.
 */
void
BM_MsmDigitsLimb(benchmark::State& state)
{
    using Repr = ff::bn254::Fr::Repr;
    Rng rng(10);
    const std::size_t n = 1024;
    const unsigned c = 13;
    const unsigned windows = ec::msmSignedWindows<Repr>(c);
    std::vector<Repr> scalars(n);
    for (auto& s : scalars)
        s = ff::bn254::Fr::random(rng).toBigInt();
    for (auto _ : state) {
        const auto biased = ec::msmBiasScalars(scalars.data(), n, c);
        long acc = 0;
        const long half = 1L << (c - 1);
        for (unsigned w = 0; w < windows; ++w)
            for (std::size_t i = 0; i < n; ++i)
                acc += (long)biased[i].bits((std::size_t)w * c, c) -
                       half;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed((long)(state.iterations() * n * windows));
}
BENCHMARK(BM_MsmDigitsLimb);

/**
 * MSM digit extraction, bit-by-bit: the seed kernel's inner loop
 * (c single-bit reads OR-ed together per window digit), kept as the
 * ablation baseline for the limb-level read.
 */
void
BM_MsmDigitsPerBit(benchmark::State& state)
{
    using Repr = ff::bn254::Fr::Repr;
    Rng rng(10);
    const std::size_t n = 1024;
    const unsigned c = 13;
    const unsigned windows = (unsigned)((Repr::kBits + c - 1) / c);
    std::vector<Repr> scalars(n);
    for (auto& s : scalars)
        s = ff::bn254::Fr::random(rng).toBigInt();
    for (auto _ : state) {
        long acc = 0;
        for (unsigned w = 0; w < windows; ++w) {
            for (std::size_t i = 0; i < n; ++i) {
                u64 digit = 0;
                for (unsigned b = 0; b < c; ++b) {
                    const std::size_t pos = (std::size_t)w * c + b;
                    if (pos < Repr::kBits && scalars[i].bit(pos))
                        digit |= u64(1) << b;
                }
                acc += (long)digit;
            }
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed((long)(state.iterations() * n * windows));
}
BENCHMARK(BM_MsmDigitsPerBit);

void
BM_MimcHash(benchmark::State& state)
{
    using Fr = ff::bn254::Fr;
    Fr a = Fr::fromU64(1), b = Fr::fromU64(2);
    for (auto _ : state) {
        a = r1cs::Mimc<Fr>::hash2(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MimcHash);

} // namespace

BENCHMARK_MAIN();
