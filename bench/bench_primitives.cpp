/**
 * @file
 * E10 — kernel-level microbenchmarks (google-benchmark) of the
 * primitives every stage decomposes into: field ops on both base
 * fields, extension-tower ops, curve ops, fixed-base and Pippenger
 * multiplication, NTT, pairing components, and the witness
 * interpreter.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ec/fixed_base.h"
#include "ec/msm.h"
#include "pairing/pairing.h"
#include "poly/domain.h"
#include "r1cs/circuits.h"

namespace {

using namespace zkp;

template <typename F>
void
BM_FieldMul(benchmark::State& state)
{
    Rng rng(1);
    F a = F::random(rng);
    F b = F::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldMul, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldMul, ff::bls381::Fq);

template <typename F>
void
BM_FieldAdd(benchmark::State& state)
{
    Rng rng(2);
    F a = F::random(rng);
    F b = F::random(rng);
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldAdd, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldAdd, ff::bls381::Fq);

template <typename F>
void
BM_FieldInverse(benchmark::State& state)
{
    Rng rng(3);
    F a = F::random(rng);
    for (auto _ : state) {
        a = a.inverse() + F::one();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_FieldInverse, ff::bn254::Fq);
BENCHMARK_TEMPLATE(BM_FieldInverse, ff::bls381::Fq);

template <typename Tower>
void
BM_Fp12Mul(benchmark::State& state)
{
    Rng rng(4);
    auto a = ff::Fp12<Tower>::random(rng);
    auto b = ff::Fp12<Tower>::random(rng);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK_TEMPLATE(BM_Fp12Mul, ff::Bn254Tower);
BENCHMARK_TEMPLATE(BM_Fp12Mul, ff::Bls381Tower);

template <typename Group>
void
BM_PointAddMixed(benchmark::State& state)
{
    typename Group::Jacobian g{Group::generator()};
    auto p = g.mulScalar((u64)12345);
    auto q = g.mulScalar((u64)67890).toAffine();
    for (auto _ : state) {
        p = p.addMixed(q);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bls381G1);
BENCHMARK_TEMPLATE(BM_PointAddMixed, ec::Bn254G2);

template <typename Group>
void
BM_ScalarMul(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    Rng rng(5);
    typename Group::Jacobian g{Group::generator()};
    auto k = Fr::random(rng).toBigInt();
    for (auto _ : state) {
        auto p = g.mulScalar(k);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_ScalarMul, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_ScalarMul, ec::Bls381G1);

template <typename Group>
void
BM_FixedBaseMul(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    using Repr = typename Fr::Repr;
    static const ec::FixedBaseTable<typename Group::Jacobian, Repr>
        table{typename Group::Jacobian{Group::generator()}};
    Rng rng(6);
    auto k = Fr::random(rng).toBigInt();
    for (auto _ : state) {
        auto p = table.mul(k);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK_TEMPLATE(BM_FixedBaseMul, ec::Bn254G1);
BENCHMARK_TEMPLATE(BM_FixedBaseMul, ec::Bls381G1);

template <typename Group>
void
BM_Msm(benchmark::State& state)
{
    using Fr = typename Group::Scalar;
    using Repr = typename Fr::Repr;
    const std::size_t n = (std::size_t)state.range(0);
    Rng rng(7);
    typename Group::Jacobian g{Group::generator()};
    std::vector<typename Group::Affine> pts;
    std::vector<Repr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(g.mulScalar(rng.nextBelow(1 << 20) + 1)
                          .toAffine());
        scalars.push_back(Fr::random(rng).toBigInt());
    }
    for (auto _ : state) {
        auto p = ec::msm<typename Group::Jacobian>(pts.data(),
                                                   scalars.data(), n);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK_TEMPLATE(BM_Msm, ec::Bn254G1)->Arg(1 << 10)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_Msm, ec::Bls381G1)->Arg(1 << 10);

template <typename Fr>
void
BM_Ntt(benchmark::State& state)
{
    const std::size_t n = (std::size_t)state.range(0);
    poly::Domain<Fr> dom(n);
    Rng rng(8);
    std::vector<Fr> v(n);
    for (auto& x : v)
        x = Fr::random(rng);
    for (auto _ : state) {
        dom.ntt(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK_TEMPLATE(BM_Ntt, ff::bn254::Fr)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_Ntt, ff::bls381::Fr)->Arg(1 << 12);

template <typename Engine>
void
BM_MillerLoop(benchmark::State& state)
{
    auto p = Engine::G1::generator();
    auto q = Engine::G2::generator();
    for (auto _ : state) {
        auto f = Engine::millerLoop(p, q);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK_TEMPLATE(BM_MillerLoop, pairing::Bn254Engine);
BENCHMARK_TEMPLATE(BM_MillerLoop, pairing::Bls381Engine);

template <typename Engine>
void
BM_FullPairing(benchmark::State& state)
{
    auto p = Engine::G1::generator();
    auto q = Engine::G2::generator();
    for (auto _ : state) {
        auto f = Engine::pairing(p, q);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK_TEMPLATE(BM_FullPairing, pairing::Bn254Engine);
BENCHMARK_TEMPLATE(BM_FullPairing, pairing::Bls381Engine);

void
BM_WitnessInterpreter(benchmark::State& state)
{
    using Fr = ff::bn254::Fr;
    const std::size_t n = (std::size_t)state.range(0);
    r1cs::ExponentiationCircuit<Fr> circ(n);
    r1cs::WitnessCalculator<Fr> calc(circ.builder.witnessProgram());
    Rng rng(9);
    Fr x = Fr::random(rng);
    Fr y = circ.evaluate(x);
    for (auto _ : state) {
        auto z = calc.compute({y}, {x});
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed((long)(state.iterations() * n));
}
BENCHMARK(BM_WitnessInterpreter)->Arg(1 << 10)->Arg(1 << 14);

void
BM_MimcHash(benchmark::State& state)
{
    using Fr = ff::bn254::Fr;
    Fr a = Fr::fromU64(1), b = Fr::fromU64(2);
    for (auto _ : state) {
        a = r1cs::Mimc<Fr>::hash2(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MimcHash);

} // namespace

BENCHMARK_MAIN();
