/**
 * @file
 * Perf regression gate: load a kernel baseline (BENCH_kernels.json),
 * rerun the same kernel set, and fail when any kernel slowed down
 * beyond the threshold. The fresh measurements are written next to
 * the baseline (<baseline>.new.json) so promoting them is a file
 * rename and the repo accumulates a perf trajectory.
 *
 * Run: ./build/bench/bench_compare [baseline.json]
 *          [--threshold <pct>] [--mem-threshold <pct>] [--out <path>]
 *          [--update] [--against <results.json>] [--require-all]
 *
 *   --threshold      allowed slowdown in percent (default 10; also
 *                    ZKP_BENCH_THRESHOLD)
 *   --mem-threshold  allowed growth in percent for the memory fields
 *                    (peak_rss_bytes, alloc_bytes); independent of
 *                    the time gate because footprint noise differs
 *                    from timing noise (default 25; also
 *                    ZKP_BENCH_MEM_THRESHOLD). Gated only when both
 *                    sides carry a nonzero measurement, so pre-mem
 *                    baselines keep passing.
 *   --out            where to write the fresh results
 *                    (default <baseline>.new.json)
 *   --update         overwrite the baseline itself with the fresh
 *                    results after a passing run
 *   --against        compare the baseline to an already-written
 *                    results file instead of rerunning the kernel
 *                    set. Accepts any document with the
 *                    BENCH_kernels.json "results" entry schema —
 *                    including BENCH_serve.json from bench_serve — so
 *                    two serving runs can be diffed without
 *                    re-measuring.
 *   --require-all    baseline entries missing from the current run
 *                    fail the gate instead of being ignored. CI uses
 *                    this so a kernel silently dropped from the set
 *                    (a renamed entry, a crashed measurement) cannot
 *                    masquerade as a pass.
 *
 * Comparison uses min-of-repeats seconds (noise-robust); entries are
 * matched by (name, n, threads). Without --require-all, entries
 * present on only one side are reported but never fail the gate, so
 * adding or retiring kernels does not break local runs. Exit code:
 * 0 pass, 1 regression/missing, 2 usage/I-O.
 */

#include "kernels_common.h"

int
main(int argc, char** argv)
{
    using namespace zkp;
    std::string baseline_path = "BENCH_kernels.json";
    std::string out_path;
    std::string against_path;
    double threshold_pct =
        (double)bench::envLong("ZKP_BENCH_THRESHOLD", 10);
    double mem_threshold_pct =
        (double)bench::envLong("ZKP_BENCH_MEM_THRESHOLD", 25);
    bool update = false;
    bool require_all = false;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            threshold_pct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--mem-threshold") == 0 &&
                   i + 1 < argc) {
            mem_threshold_pct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--against") == 0 &&
                   i + 1 < argc) {
            against_path = argv[++i];
        } else if (std::strcmp(argv[i], "--update") == 0) {
            update = true;
        } else if (std::strcmp(argv[i], "--require-all") == 0) {
            require_all = true;
        } else if (positional == 0) {
            baseline_path = argv[i];
            ++positional;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (out_path.empty())
        out_path = baseline_path + ".new.json";

    std::string text;
    if (!bench::readFileText(baseline_path, text)) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
    }
    const auto baseline = bench::parseKernelBaseline(text);
    if (baseline.empty()) {
        std::fprintf(stderr, "no kernel entries in %s\n",
                     baseline_path.c_str());
        return 2;
    }

    std::vector<bench::KernelEntry> fresh;
    if (!against_path.empty()) {
        std::string against_text;
        if (!bench::readFileText(against_path, against_text)) {
            std::fprintf(stderr, "cannot read results %s\n",
                         against_path.c_str());
            return 2;
        }
        fresh = bench::parseKernelBaseline(against_text);
        if (fresh.empty()) {
            std::fprintf(stderr, "no kernel entries in %s\n",
                         against_path.c_str());
            return 2;
        }
        std::printf("bench_compare: baseline %s (%zu entries) vs "
                    "%s (%zu entries), threshold %.1f%%\n\n",
                    baseline_path.c_str(), baseline.size(),
                    against_path.c_str(), fresh.size(),
                    threshold_pct);
    } else {
        const std::size_t log_n =
            (std::size_t)bench::envLong("ZKP_KERNEL_LOG_N", 16);
        const std::size_t threads =
            (std::size_t)bench::envLong("ZKP_KERNEL_THREADS", 8);
        std::printf("bench_compare: baseline %s (%zu entries), "
                    "threshold %.1f%%\n\n",
                    baseline_path.c_str(), baseline.size(),
                    threshold_pct);
        fresh = bench::runKernelEntries(log_n, threads);
    }

    TextTable table;
    table.setHeader({"kernel", "n", "threads", "baseline s",
                     "current s", "delta", "verdict"});
    TextTable memTable;
    memTable.setHeader({"kernel", "metric", "baseline", "current",
                        "delta", "verdict"});
    unsigned regressions = 0, improvements = 0, matched = 0;
    unsigned missing = 0, memRegressions = 0, memMatched = 0;

    // Gate one memory field of one matched kernel pair. Only pairs
    // where both sides measured (nonzero) participate, so baselines
    // written before the mem fields existed — or on machines without
    // /proc — neither fail nor silently anchor a zero baseline.
    auto gateMem = [&](const bench::KernelEntry& b, std::uint64_t base,
                       std::uint64_t cur, const char* metric) {
        if (base == 0 || cur == 0)
            return;
        ++memMatched;
        const double delta_pct =
            100.0 * ((double)cur - (double)base) / (double)base;
        const bool regressed = delta_pct > mem_threshold_pct;
        if (regressed)
            ++memRegressions;
        char delta_buf[32];
        std::snprintf(delta_buf, sizeof(delta_buf), "%+.1f%%",
                      delta_pct);
        memTable.addRow({b.name, metric, std::to_string(base),
                         std::to_string(cur), delta_buf,
                         regressed ? "REGRESSED" : "ok"});
    };

    for (const auto& b : baseline) {
        const bench::KernelEntry* cur = nullptr;
        for (const auto& f : fresh)
            if (f.name == b.name && f.n == b.n &&
                f.threads == b.threads)
                cur = &f;
        if (!cur) {
            ++missing;
            table.addRow({b.name, std::to_string(b.n),
                          std::to_string(b.threads),
                          fmtF(b.secondsMin, 6), "-", "-",
                          require_all ? "MISSING"
                                      : "missing (ignored)"});
            continue;
        }
        ++matched;
        gateMem(b, b.peakRssBytes, cur->peakRssBytes,
                "peak_rss_bytes");
        gateMem(b, b.allocBytes, cur->allocBytes, "alloc_bytes");
        const double delta_pct =
            b.secondsMin > 0
                ? 100.0 * (cur->secondsMin - b.secondsMin) /
                      b.secondsMin
                : 0.0;
        const bool regressed = delta_pct > threshold_pct;
        const bool improved = delta_pct < -threshold_pct;
        if (regressed)
            ++regressions;
        if (improved)
            ++improvements;
        char delta_buf[32];
        std::snprintf(delta_buf, sizeof(delta_buf), "%+.1f%%",
                      delta_pct);
        table.addRow({b.name, std::to_string(b.n),
                      std::to_string(b.threads),
                      fmtF(b.secondsMin, 6),
                      fmtF(cur->secondsMin, 6), delta_buf,
                      regressed   ? "REGRESSED"
                      : improved  ? "improved"
                                  : "ok"});
    }
    for (const auto& f : fresh) {
        bool known = false;
        for (const auto& b : baseline)
            if (f.name == b.name && f.n == b.n &&
                f.threads == b.threads)
                known = true;
        if (!known)
            table.addRow({f.name, std::to_string(f.n),
                          std::to_string(f.threads), "-",
                          fmtF(f.secondsMin, 6), "-",
                          "new (ignored)"});
    }
    bench::printTable("bench_compare: baseline vs current (min "
                      "seconds)", table);
    if (memMatched > 0)
        bench::printTable("bench_compare: memory footprint gate "
                          "(bytes)", memTable);

    if (against_path.empty()) {
        std::vector<std::pair<std::string, std::string>> notes;
        notes.emplace_back("baseline", baseline_path);
        if (!bench::writeKernelJson(
                out_path, bench::kernelEntriesJson(fresh, notes)))
            std::fprintf(stderr, "warning: cannot write %s\n",
                         out_path.c_str());
        else
            std::printf("current results written to %s\n",
                        out_path.c_str());
    }

    if (regressions > 0 || memRegressions > 0 ||
        (require_all && missing > 0)) {
        if (regressions > 0)
            std::printf("\nFAIL: %u of %u matched kernels regressed "
                        "beyond %.1f%%\n",
                        regressions, matched, threshold_pct);
        if (memRegressions > 0)
            std::printf("\nFAIL: %u of %u memory measurements grew "
                        "beyond %.1f%%\n",
                        memRegressions, memMatched,
                        mem_threshold_pct);
        if (require_all && missing > 0)
            std::printf("\nFAIL: %u baseline entries missing from "
                        "the current run (--require-all)\n",
                        missing);
        return 1;
    }
    if (update) {
        if (bench::writeKernelJson(
                baseline_path, bench::kernelEntriesJson(fresh, {})))
            std::printf("baseline %s updated\n",
                        baseline_path.c_str());
        else
            std::fprintf(stderr, "warning: cannot update %s\n",
                         baseline_path.c_str());
    }
    std::printf("\nPASS: %u kernels within %.1f%% of baseline "
                "(%u improved); %u memory measurements within "
                "%.1f%%\n",
                matched, threshold_pct, improvements, memMatched,
                mem_threshold_pct);
    return 0;
}
